// roicl — command-line front end for the library.
//
// Subcommands:
//   generate  synthesize an RCT dataset to CSV
//   train     fit DRP or rDRP on CSV data and save the model
//   predict   score a CSV with a saved model (ROI and, for rDRP,
//             conformal interval bounds)
//   evaluate  AUCC / Qini of a saved model on labelled CSV data
//   allocate  greedy C-BTAP budget allocation with a saved model
//
// Examples:
//   roicl generate --dataset criteo --n 20000 --seed 1 --out train.csv
//   roicl generate --dataset criteo --n 5000 --seed 2 --shifted --out calib.csv
//   roicl train --model rdrp --train train.csv --calib calib.csv --out m.rdrp
//   roicl evaluate --model-type rdrp --model m.rdrp --data test.csv
//   roicl allocate --model-type rdrp --model m.rdrp --data test.csv
//       --budget-frac 0.15
//
// Observability flags (all subcommands):
//   --log-level LEVEL   debug|info|warn|error|off (default info; the
//                       ROICL_LOG_LEVEL env var wins when set)
//   --log-json FILE     mirror log records to FILE as JSON lines
//   --metrics-out FILE  write the metrics-registry snapshot JSON on exit
//   --trace-out FILE    collect trace spans, write chrome://tracing JSON

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/drp_model.h"
#include "core/greedy.h"
#include "core/rdrp.h"
#include "core/roi_star.h"
#include "data/csv.h"
#include "exp/datasets.h"
#include "metrics/cost_curve.h"
#include "metrics/qini.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/synthetic_generator.h"
#include "common/math_util.h"

using namespace roicl;

namespace {

/// Minimal --flag value parser; flags without values are booleans.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      std::string key = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "1";
      }
    }
  }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    std::string v = Get(key);
    return v.empty() ? fallback : std::atoi(v.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    std::string v = Get(key);
    return v.empty() ? fallback : std::atof(v.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

/// Touches every metric the pipeline can emit so a snapshot written by any
/// subcommand carries the full schema (untouched instruments read zero).
/// Names and bucket layouts must match the instrumentation sites.
void PreregisterStandardMetrics() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const char* name :
       {"train.epochs", "train.early_stops", "mc_dropout.samples",
        "roi_star.searches", "allocate.calls", "threadpool.tasks"}) {
    registry.GetCounter(name);
  }
  for (const char* name :
       {"train.loss", "train.final_loss", "train.grad_norm", "train.lr",
        "conformal.q_hat", "conformal.calibration_n",
        "mc_dropout.samples_per_sec", "exp.predict_samples_per_sec",
        "roi_star.iterations", "roi_star.bracket_width",
        "allocate.budget_used_frac", "allocate.selected",
        "threadpool.queue_depth"}) {
    registry.GetGauge(name);
  }
  registry.GetHistogram("conformal.score", obs::ConformalScoreBuckets());
  registry.GetHistogram("threadpool.task_us", obs::LatencyMicrosBuckets());
  registry.GetHistogram("mc_dropout.batch_us", obs::LatencyMicrosBuckets());
}

void SetupObservability(const Flags& flags) {
  obs::Logger& logger = obs::Logger::Global();
  std::string level_text = flags.Get("log-level");
  if (!level_text.empty()) {
    obs::LogLevel level;
    if (!obs::ParseLogLevel(level_text, &level)) {
      std::fprintf(stderr,
                   "bad --log-level '%s' (debug|info|warn|error|off)\n",
                   level_text.c_str());
      std::exit(2);
    }
    logger.SetLevel(level);
  } else if (std::getenv("ROICL_LOG_LEVEL") == nullptr) {
    // The library defaults to warn; an interactive CLI run wants info.
    logger.SetLevel(obs::LogLevel::kInfo);
  }
  if (flags.Has("log-json")) {
    auto sink = std::make_unique<obs::JsonLinesSink>(flags.Get("log-json"));
    if (!sink->ok()) {
      std::fprintf(stderr, "cannot open --log-json %s\n",
                   flags.Get("log-json").c_str());
      std::exit(2);
    }
    logger.AddSink(std::move(sink));
  }
  if (flags.Has("trace-out")) {
    obs::TraceCollector::Global().SetEnabled(true);
  }
  PreregisterStandardMetrics();
}

/// Metrics summary + optional JSON exports, run after the subcommand.
void FinishObservability(const Flags& flags) {
  obs::Logger& logger = obs::Logger::Global();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (logger.ShouldLog(obs::LogLevel::kInfo)) {
    std::vector<obs::LogField> fields;
    registry.ForEachCounter([&](const std::string& name, uint64_t value) {
      fields.emplace_back(name, static_cast<unsigned long long>(value));
    });
    registry.ForEachGauge([&](const std::string& name, double value) {
      fields.emplace_back(name, value);
    });
    logger.LogV(obs::LogLevel::kInfo, "metrics summary", fields);
  }
  if (flags.Has("metrics-out")) {
    std::string path = flags.Get("metrics-out");
    if (registry.WriteSnapshotJson(path)) {
      obs::Info("wrote metrics snapshot", {{"path", path}});
    } else {
      obs::Error("cannot write metrics snapshot", {{"path", path}});
    }
  }
  if (flags.Has("trace-out")) {
    std::string path = flags.Get("trace-out");
    obs::TraceCollector& collector = obs::TraceCollector::Global();
    if (collector.WriteChromeJson(path)) {
      obs::Info("wrote chrome trace",
                {{"path", path}, {"events", collector.size()}});
    } else {
      obs::Error("cannot write chrome trace", {{"path", path}});
    }
  }
}

synth::SyntheticConfig DatasetConfigByName(const std::string& name) {
  if (name == "criteo") return synth::CriteoSynthConfig();
  if (name == "meituan") return synth::MeituanSynthConfig();
  if (name == "alibaba") return synth::AlibabaSynthConfig();
  std::fprintf(stderr,
               "unknown --dataset '%s' (criteo | meituan | alibaba)\n",
               name.c_str());
  std::exit(2);
}

RctDataset LoadCsvOrDie(const std::string& path) {
  StatusOr<RctDataset> data = ReadDatasetCsv(path);
  if (!data.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(),
                 data.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(data).value();
}

core::DrpConfig DrpConfigFromFlags(const Flags& flags) {
  core::DrpConfig config;
  config.hidden_units = flags.GetInt("hidden", 0);
  config.dropout = flags.GetDouble("dropout", 0.2);
  config.train.epochs = flags.GetInt("epochs", 120);
  config.train.learning_rate = flags.GetDouble("lr", 5e-3);
  config.train.patience = flags.GetInt("patience", 12);
  config.train.seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));
  config.restarts = flags.GetInt("restarts", 3);
  // Batched prediction engine knobs. Neither changes any predicted value
  // (results are bit-identical at every setting); they only trade memory
  // and parallelism against wall clock.
  config.predict.batch_size = flags.GetInt("batch-size", 256);
  config.predict.num_threads = flags.GetInt("threads", 0);
  return config;
}

int CmdGenerate(const Flags& flags) {
  synth::SyntheticConfig config =
      DatasetConfigByName(flags.Get("dataset", "criteo"));
  synth::SyntheticGenerator generator(config);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  RctDataset data = generator.Generate(flags.GetInt("n", 10000),
                                       flags.Has("shifted"), &rng);
  std::string out = flags.Require("out");
  Status status = WriteDatasetCsv(data, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %d rows x %d features to %s\n", data.n(), data.dim(),
              out.c_str());
  return 0;
}

int CmdTrain(const Flags& flags) {
  std::string model_type = flags.Get("model", "rdrp");
  RctDataset train = LoadCsvOrDie(flags.Require("train"));
  std::string out = flags.Require("out");

  if (model_type == "drp") {
    core::DrpModel model(DrpConfigFromFlags(flags));
    model.Fit(train);
    Status status = model.SaveToFile(out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("trained DRP on %d samples -> %s\n", train.n(),
                out.c_str());
    return 0;
  }
  if (model_type == "rdrp") {
    core::RdrpConfig config;
    config.drp = DrpConfigFromFlags(flags);
    config.alpha = flags.GetDouble("alpha", 0.1);
    config.mc_passes = flags.GetInt("mc-passes", 30);
    core::RdrpModel model(config);
    if (flags.Has("calib")) {
      RctDataset calib = LoadCsvOrDie(flags.Get("calib"));
      model.FitWithCalibration(train, calib);
    } else {
      std::fprintf(stderr,
                   "warning: no --calib set; calibrating on the training "
                   "data (Assumption 6 will not hold)\n");
      model.Fit(train);
    }
    Status status = model.SaveToFile(out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf(
        "trained rDRP on %d samples (roi*=%.4f, q_hat=%.4f, form %s) -> "
        "%s\n",
        train.n(), model.roi_star(), model.q_hat(),
        core::CalibrationFormName(model.selected_form()).c_str(),
        out.c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown --model '%s' (drp | rdrp)\n",
               model_type.c_str());
  return 2;
}

/// Loads either model type and returns scores (+ intervals for rdrp).
struct LoadedModel {
  std::vector<double> scores;
  std::vector<metrics::Interval> intervals;  // empty for drp
};

LoadedModel ScoreWithModel(const Flags& flags, const Matrix& x) {
  std::string model_type = flags.Get("model-type", "rdrp");
  std::string path = flags.Require("model");
  LoadedModel out;
  if (model_type == "drp") {
    StatusOr<core::DrpModel> model = core::DrpModel::LoadFromFile(path);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      std::exit(1);
    }
    out.scores = model.value().PredictRoi(x);
  } else if (model_type == "rdrp") {
    StatusOr<core::RdrpModel> model = core::RdrpModel::LoadFromFile(path);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      std::exit(1);
    }
    out.scores = model.value().PredictRoi(x);
    out.intervals = model.value().PredictIntervals(x);
  } else {
    std::fprintf(stderr, "unknown --model-type '%s' (drp | rdrp)\n",
                 model_type.c_str());
    std::exit(2);
  }
  return out;
}

int CmdPredict(const Flags& flags) {
  RctDataset data = LoadCsvOrDie(flags.Require("data"));
  LoadedModel scored = ScoreWithModel(flags, data.x);
  std::string out_path = flags.Require("out");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out.precision(10);
  bool with_intervals = !scored.intervals.empty();
  out << (with_intervals ? "roi,interval_lo,interval_hi\n" : "roi\n");
  for (size_t i = 0; i < scored.scores.size(); ++i) {
    out << scored.scores[i];
    if (with_intervals) {
      out << ',' << scored.intervals[i].lo << ','
          << scored.intervals[i].hi;
    }
    out << '\n';
  }
  std::printf("wrote %zu predictions to %s\n", scored.scores.size(),
              out_path.c_str());
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  RctDataset data = LoadCsvOrDie(flags.Require("data"));
  LoadedModel scored = ScoreWithModel(flags, data.x);
  std::printf("n          : %d\n", data.n());
  std::printf("AUCC       : %.4f\n", metrics::Aucc(scored.scores, data));
  std::printf("Qini (rev) : %.4f\n",
              metrics::QiniCoefficient(scored.scores, data));
  if (!scored.intervals.empty()) {
    double roi_star = core::BinarySearchRoiStar(data);
    int covered = 0;
    double width = 0.0;
    for (const auto& interval : scored.intervals) {
      covered += interval.Contains(roi_star);
      width += interval.width();
    }
    std::printf("coverage of this set's roi* (%.4f): %.3f\n", roi_star,
                static_cast<double>(covered) /
                    static_cast<double>(scored.intervals.size()));
    std::printf("mean interval width: %.4f\n",
                width / static_cast<double>(scored.intervals.size()));
  }
  return 0;
}

int CmdAllocate(const Flags& flags) {
  RctDataset data = LoadCsvOrDie(flags.Require("data"));
  LoadedModel scored = ScoreWithModel(flags, data.x);
  if (!data.has_ground_truth()) {
    std::fprintf(stderr,
                 "allocate requires true_tau_c columns (synthetic data) "
                 "to account spend\n");
    return 1;
  }
  double total_cost = 0.0;
  for (double c : data.true_tau_c) total_cost += c;
  double budget = flags.GetDouble("budget-frac", 0.15) * total_cost;
  core::AllocationResult alloc =
      core::GreedyAllocate(scored.scores, data.true_tau_c, budget,
                           /*skip_unaffordable=*/true);
  double revenue = 0.0;
  for (int i : alloc.selected) revenue += data.true_tau_r[roicl::AsSize(i)];
  std::printf("budget            : %.2f (%.0f%% of all-in)\n", budget,
              100.0 * flags.GetDouble("budget-frac", 0.15));
  std::printf("treated           : %zu of %d\n", alloc.selected.size(),
              data.n());
  std::printf("spent             : %.2f\n", alloc.spent);
  std::printf("incr. revenue     : %.2f\n", revenue);
  std::printf("revenue per spend : %.4f\n",
              alloc.spent > 0 ? revenue / alloc.spent : 0.0);
  return 0;
}

void PrintUsage() {
  std::fputs(
      "usage: roicl <generate|train|predict|evaluate|allocate> [--flags]\n"
      "run with a subcommand and no flags to see its required arguments\n"
      "observability flags (any subcommand): --log-level LEVEL, "
      "--log-json FILE, --metrics-out FILE, --trace-out FILE\n"
      "prediction engine flags (train/predict/evaluate/allocate): "
      "--batch-size N (default 256), --threads N "
      "(0 = shared pool, 1 = serial; results are identical either way)\n",
      stderr);
}

int RunCommand(const std::string& command, const Flags& flags) {
  obs::ScopedSpan span("roicl." + command);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "predict") return CmdPredict(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "allocate") return CmdAllocate(flags);
  PrintUsage();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  std::string command = argv[1];
  Flags flags(argc, argv, 2);
  SetupObservability(flags);
  int exit_code = RunCommand(command, flags);
  FinishObservability(flags);
  return exit_code;
}
