#!/bin/bash
# Build-matrix driver: configures and builds every supported build mode
# and prints one pass/fail row per configuration. Each row also runs the
# monitor subsystem's pure-logic drift/coverage tests in that mode — a
# seconds-long smoke (no model training) that puts the newest serving
# surface through every compiler/sanitizer flavor. Meant for manual runs
# and release gating, not for ctest — several rows are themselves full
# builds (and the sanitizer rows would recurse into ctest), so wiring it
# into the suite would multiply CI time by the matrix size.
#
# Usage: check_build_matrix.sh <repo root> [config ...]
#   configs: release strict asan ubsan tsan tsa   (default: all)
# Build trees live under <repo root>/build-matrix/<config> and are
# incremental across runs. Exits non-zero if any requested row fails.
# The tsa row (Clang Thread Safety Analysis, -Werror) requires a clang++;
# without one it reports SKIP loudly rather than failing the matrix —
# GCC cannot run the analysis (the annotations compile away).
set -euo pipefail

repo_root=${1:?usage: check_build_matrix.sh <repo root> [config ...]}
shift || true
configs=("$@")
if [ "${#configs[@]}" -eq 0 ]; then
  configs=(release strict asan ubsan tsan tsa)
fi

# Same probe order as tools/check_tsa.sh: explicit override first, then
# the unversioned name, then recent versioned names.
find_clangxx() {
  for candidate in "${ROICL_CLANGXX:-}" clang++ clang++-21 clang++-20 \
      clang++-19 clang++-18 clang++-17 clang++-16 clang++-15 clang++-14; do
    [ -n "${candidate}" ] || continue
    if command -v "${candidate}" >/dev/null 2>&1; then
      command -v "${candidate}"
      return 0
    fi
  done
  return 1
}

cmake_args_for() {
  case "$1" in
    release) echo "-DCMAKE_BUILD_TYPE=Release" ;;
    strict)  echo "-DCMAKE_BUILD_TYPE=Release -DROICL_STRICT=ON" ;;
    asan)    echo "-DCMAKE_BUILD_TYPE=RelWithDebInfo -DROICL_SANITIZE=address" ;;
    ubsan)   echo "-DCMAKE_BUILD_TYPE=RelWithDebInfo -DROICL_SANITIZE=undefined" ;;
    tsan)    echo "-DCMAKE_BUILD_TYPE=RelWithDebInfo -DROICL_SANITIZE=thread" ;;
    tsa)     echo "-DCMAKE_BUILD_TYPE=Release -DROICL_TSA=ON" ;;
    *) echo "unknown config '$1'" >&2; return 1 ;;
  esac
}

# Training-free monitor tests: drift statistics, window merging, the
# coverage ring, and the ACI walk. Fast enough to run under TSan too.
monitor_smoke_filter='ReferenceDistribution.*:DriftStatistics.*'
monitor_smoke_filter+=':WindowCounts.*:DriftDetector.*'
monitor_smoke_filter+=':CoverageTracker.*:AdaptiveAlpha.*'

# Load-replay smoke: one small rDRP training, then the harness spins up
# the full service + monitor + SLO stack and is cancelled at the first
# poll — the cheapest row that still drives the serving path end to end.
load_replay_smoke_filter='LoadReplayTest.CancellationStopsEarly*'

# Streaming-allocate smoke: the sharded frontier merge proven bitwise
# against the in-memory greedy, plus a dual-threshold feasibility run —
# sub-second, so it rides along in every sanitizer row too.
alloc_smoke_filter='StreamingSmoke.*'

# K-arm campaign smoke: the streaming best-pair scan proven bitwise
# against the in-memory K-arm reference on a fixed instance, plus the
# dual-ascent certificate soundness check — also sub-second.
campaign_smoke_filter='CampaignSmoke.*'

declare -A result
status=0
for config in "${configs[@]}"; do
  args=$(cmake_args_for "${config}")
  if [ "${config}" = "tsa" ]; then
    if clangxx=$(find_clangxx); then
      args+=" -DCMAKE_CXX_COMPILER=${clangxx}"
    else
      echo "== tsa: SKIP — no clang++ on PATH (set ROICL_CLANGXX to" \
        "override); GCC cannot run Thread Safety Analysis =="
      result[${config}]=SKIP
      continue
    fi
  fi
  tree="${repo_root}/build-matrix/${config}"
  echo "== ${config}: cmake ${args} =="
  # shellcheck disable=SC2086  # args is a deliberate word-split flag list
  if cmake -S "${repo_root}" -B "${tree}" ${args} >/dev/null &&
      cmake --build "${tree}" -j "$(nproc)" >/dev/null 2>&1 &&
      "${tree}/tests/monitor_test" \
        --gtest_filter="${monitor_smoke_filter}" >/dev/null 2>&1 &&
      "${tree}/tests/load_replay_test" \
        --gtest_filter="${load_replay_smoke_filter}" >/dev/null 2>&1 &&
      "${tree}/tests/alloc_equivalence_test" \
        --gtest_filter="${alloc_smoke_filter}" >/dev/null 2>&1 &&
      "${tree}/tests/campaign_allocate_test" \
        --gtest_filter="${campaign_smoke_filter}" >/dev/null 2>&1; then
    result[${config}]=PASS
  else
    result[${config}]=FAIL
    status=1
  fi
done

echo
printf '%-10s %s\n' config result
printf '%-10s %s\n' ------ ------
for config in "${configs[@]}"; do
  printf '%-10s %s\n' "${config}" "${result[${config}]}"
done
exit "${status}"
