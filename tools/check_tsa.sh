#!/usr/bin/env bash
# Clang Thread Safety Analysis gate, runnable without a full ROICL_TSA
# build: (1) proves the analysis fires on the tools/tsa/bad_*.cc negative
# fixtures (each must fail to compile AND emit its `// EXPECT:` text),
# (2) proves tools/tsa/good_contract.cc is clean, then (3) sweeps every
# src/**/*.cc with -fsyntax-only under warnings-as-errors — the
# "-Wthread-safety clean over src/" acceptance bar.
#
# The analysis is a clang extension. When no clang++ is on PATH (the GCC
# CI image), the check SKIPS loudly with exit 77 — ctest reports it as
# skipped via SKIP_RETURN_CODE, never as silently passed. Override the
# compiler with ROICL_CLANGXX=/path/to/clang++.
set -euo pipefail

repo_root=${1:?usage: check_tsa.sh <repo root>}
cd "${repo_root}"

clangxx=${ROICL_CLANGXX:-}
if [[ -z "${clangxx}" ]]; then
  for candidate in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
                   clang++-17 clang++-16 clang++-15 clang++-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      clangxx=${candidate}
      break
    fi
  done
fi
if [[ -z "${clangxx}" ]]; then
  echo "check_tsa.sh: SKIP — no clang++ on PATH and ROICL_CLANGXX unset" >&2
  echo "check_tsa.sh: Thread Safety Analysis is a clang extension; the" >&2
  echo "check_tsa.sh: GCC build still compiles the annotations away." >&2
  exit 77
fi

tsa_flags=(-std=c++20 -fsyntax-only -I"${repo_root}/src"
           -Wthread-safety -Wthread-safety-beta
           -Werror=thread-safety -Werror=thread-safety-beta)
fail=0

# --- 1) Negative fixtures: the analysis must fire, with the right text.
for fixture in tools/tsa/bad_*.cc; do
  expected=$(sed -n 's|^// EXPECT: ||p' "${fixture}")
  if [[ -z "${expected}" ]]; then
    echo "FAIL: ${fixture} carries no '// EXPECT:' line" >&2
    fail=1
    continue
  fi
  if output=$("${clangxx}" "${tsa_flags[@]}" "${fixture}" 2>&1); then
    echo "FAIL: ${fixture} compiled — the analysis did not fire" >&2
    fail=1
  elif ! grep -qF "${expected}" <<<"${output}"; then
    echo "FAIL: ${fixture} failed without expected diagnostic" \
         "'${expected}':" >&2
    echo "${output}" >&2
    fail=1
  else
    echo "ok: ${fixture} (analysis fired: '${expected}')"
  fi
done

# --- 2) Positive fixture: the full annotation vocabulary is clean.
if ! output=$("${clangxx}" "${tsa_flags[@]}" tools/tsa/good_contract.cc \
              2>&1); then
  echo "FAIL: tools/tsa/good_contract.cc should be TSA-clean:" >&2
  echo "${output}" >&2
  fail=1
else
  echo "ok: tools/tsa/good_contract.cc (clean)"
fi

# --- 3) Whole-tree sweep: every library translation unit must be clean.
swept=0
while IFS= read -r source; do
  if ! output=$("${clangxx}" "${tsa_flags[@]}" "${source}" 2>&1); then
    echo "FAIL: ${source} is not thread-safety clean:" >&2
    echo "${output}" >&2
    fail=1
  fi
  swept=$((swept + 1))
done < <(find src -name '*.cc' | sort)
echo "ok: swept ${swept} src/ translation units with -Wthread-safety"

if [[ ${fail} -ne 0 ]]; then
  echo "check_tsa.sh: FAILED" >&2
  exit 1
fi
echo "check_tsa.sh: all thread-safety checks passed (${clangxx})"
