#!/bin/bash
# Builds the allocation-heavy tests under AddressSanitizer +
# LeakSanitizer (-DROICL_SANITIZE=address) and runs them. Wired into
# ctest as the `asan` label so `ctest -L asan` gives a heap-error gate
# over the Matrix buffers, CSV/model (de)serialization, the layer stack,
# and the greedy allocator.
#
# Usage: run_asan.sh <repo root> [build dir]
# The ASan build tree is kept separate (default <repo root>/build-asan)
# and incremental, so repeat runs only recompile what changed.
set -euo pipefail

repo_root=${1:?usage: run_asan.sh <repo root> [build dir]}
build_dir=${2:-"${repo_root}/build-asan"}

# The memory-churn surfaces and the tests that exercise them:
#   matrix_test        Matrix construction, stacking, SelectRows, matmul
#   solve_test         Cholesky scratch buffers
#   data_test          CSV parse/serialize round trips
#   serialize_test     model save/load byte streams
#   nn_layers_test     layer activations and gradient buffers
#   common_misc_test   ThreadPool lifetime
#   greedy_test        allocation result vectors
#   uplift_test        multi-head nets and meta-learner ensembles
#   pipeline_roundtrip_test  pipeline artifact manifest/blob parsing
#   incremental_quantile_test  treap node churn: insert/erase/clear over
#                      duplicate-heavy sliding windows
#   interval_backend_test  backend save/load byte streams and registry
#                      construction
#   alloc_fuzz_test    frontier merge double-buffering and the adversarial
#                      (NaN, zero-budget, k=0) streaming-allocator inputs
asan_tests=(matrix_test solve_test data_test serialize_test nn_layers_test
            common_misc_test greedy_test uplift_test
            pipeline_roundtrip_test incremental_quantile_test
            interval_backend_test alloc_fuzz_test)

cmake -S "${repo_root}" -B "${build_dir}" -DROICL_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${build_dir}" --target "${asan_tests[@]}" -j "$(nproc)"

status=0
for test in "${asan_tests[@]}"; do
  echo "== asan: ${test} =="
  # detect_leaks turns LeakSanitizer on explicitly; halt_on_error keeps
  # the first report adjacent to its cause, and the non-zero exit fails
  # this script and therefore the ctest entry.
  if ! ASAN_OPTIONS="detect_leaks=1:halt_on_error=1" \
      "${build_dir}/tests/${test}"; then
    status=1
  fi
done
exit ${status}
