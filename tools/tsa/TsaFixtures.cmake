# Configure-time verification that Clang Thread Safety Analysis actually
# fires. Included by the top-level CMakeLists.txt only under ROICL_TSA
# (which already guarantees a clang compiler).
#
# Each bad_*.cc fixture carries an `// EXPECT: <text>` line naming the
# diagnostic it must provoke; we try_compile it with the TSA flags and
# FATAL_ERROR unless the compile FAILS *and* the output contains the
# expected text. good_contract.cc must compile cleanly. Running this at
# configure time means a toolchain where the analysis silently stopped
# firing (wrong clang, stripped attributes, macro rot) cannot produce a
# "TSA-clean" build: the configure itself aborts.

set(ROICL_TSA_FIXTURE_DIR ${CMAKE_SOURCE_DIR}/tools/tsa)
set(ROICL_TSA_FIXTURE_FLAGS
    -Wthread-safety -Wthread-safety-beta
    -Werror=thread-safety -Werror=thread-safety-beta)

function(roicl_tsa_expect_fail fixture)
  set(src ${ROICL_TSA_FIXTURE_DIR}/${fixture})
  file(STRINGS ${src} expect_line REGEX "// EXPECT: ")
  string(REGEX REPLACE ".*// EXPECT: " "" expected "${expect_line}")
  if(expected STREQUAL "")
    message(FATAL_ERROR "TSA fixture ${fixture} carries no EXPECT line")
  endif()
  try_compile(compiled ${CMAKE_BINARY_DIR}/tsa_fixtures ${src}
              COMPILE_DEFINITIONS "${ROICL_TSA_FIXTURE_FLAGS}"
              CMAKE_FLAGS
                -DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src
                -DCMAKE_CXX_STANDARD=20
              OUTPUT_VARIABLE output)
  if(compiled)
    message(FATAL_ERROR
            "TSA negative fixture ${fixture} COMPILED: the analysis did "
            "not fire (expected diagnostic: '${expected}')")
  endif()
  string(FIND "${output}" "${expected}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
            "TSA fixture ${fixture} failed to compile but without the "
            "expected diagnostic '${expected}'; compiler output:\n"
            "${output}")
  endif()
  message(STATUS "TSA fixture ${fixture}: analysis fired ('${expected}')")
endfunction()

function(roicl_tsa_expect_pass fixture)
  set(src ${ROICL_TSA_FIXTURE_DIR}/${fixture})
  try_compile(compiled ${CMAKE_BINARY_DIR}/tsa_fixtures ${src}
              COMPILE_DEFINITIONS "${ROICL_TSA_FIXTURE_FLAGS}"
              CMAKE_FLAGS
                -DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src
                -DCMAKE_CXX_STANDARD=20
              OUTPUT_VARIABLE output)
  if(NOT compiled)
    message(FATAL_ERROR
            "TSA positive fixture ${fixture} did not compile cleanly:\n"
            "${output}")
  endif()
  message(STATUS "TSA fixture ${fixture}: clean")
endfunction()

roicl_tsa_expect_fail(bad_unguarded_read.cc)
roicl_tsa_expect_fail(bad_lock_order.cc)
roicl_tsa_expect_fail(bad_missing_release.cc)
roicl_tsa_expect_pass(good_contract.cc)
