// Negative fixture for Clang Thread Safety Analysis: acquires two mutexes
// against their declared ROICL_ACQUIRED_AFTER ordering edge — the static
// shape of an ABBA deadlock. Lock-order checking ships behind
// -Wthread-safety-beta, which is why the ROICL_TSA mode and
// tools/check_tsa.sh pass it alongside -Wthread-safety. Must FAIL to
// compile; the harnesses grep for the EXPECT line below.
//
// EXPECT: must be acquired before

#include "common/annotated_mutex.h"

namespace {

class Transfer {
 public:
  void CorrectOrder() {
    roicl::MutexLock hold_a(mu_a_);
    roicl::MutexLock hold_b(mu_b_);
  }

  // BAD: takes mu_b_ first despite mu_b_ being declared acquired-after
  // mu_a_ — combined with CorrectOrder on another thread, a deadlock.
  void InvertedOrder() {
    roicl::MutexLock hold_b(mu_b_);
    roicl::MutexLock hold_a(mu_a_);
  }

 private:
  roicl::Mutex mu_a_;
  roicl::Mutex mu_b_ ROICL_ACQUIRED_AFTER(mu_a_);
};

}  // namespace

int main() {
  Transfer transfer;
  transfer.CorrectOrder();
  transfer.InvertedOrder();
  return 0;
}
