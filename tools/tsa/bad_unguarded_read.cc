// Negative fixture for Clang Thread Safety Analysis: reads a
// ROICL_GUARDED_BY member without holding its mutex. Must FAIL to compile
// under -Wthread-safety -Werror=thread-safety; tools/check_tsa.sh and the
// configure-time try_compile in tools/tsa/TsaFixtures.cmake both assert
// the failure and grep for the EXPECT line below.
//
// EXPECT: requires holding mutex

#include "common/annotated_mutex.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    roicl::MutexLock lock(mu_);
    balance_ += amount;
  }

  // BAD: guarded read with no lock held — the defect this fixture pins.
  int UnguardedRead() const { return balance_; }

 private:
  mutable roicl::Mutex mu_;
  int balance_ ROICL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.UnguardedRead();
}
