// Positive fixture for Clang Thread Safety Analysis: exercises every
// annotation the repo's mutex layer uses — GUARDED_BY with scoped RAII
// locking, REQUIRES on a locked helper, EXCLUDES on entry points,
// ACQUIRED_AFTER honored in the declared order, TryLock's conditional
// capability, and the while-loop CondVar wait. Must compile CLEANLY under
// -Wthread-safety -Wthread-safety-beta -Werror=thread-safety
// -Werror=thread-safety-beta: a diagnostic here means the wrappers'
// contracts regressed, not the code under test.

#include "common/annotated_mutex.h"

namespace {

class BoundedCounter {
 public:
  void Increment() ROICL_EXCLUDES(mu_) {
    roicl::MutexLock lock(mu_);
    ++value_;
    BumpLocked();
    cv_.NotifyAll();
  }

  void WaitUntilAtLeast(int target) ROICL_EXCLUDES(mu_) {
    roicl::MutexLock lock(mu_);
    while (value_ < target) cv_.Wait(mu_);
  }

  bool TryIncrement() ROICL_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    ++value_;
    mu_.Unlock();
    return true;
  }

  void OrderedPair() ROICL_EXCLUDES(mu_, aux_mu_) {
    roicl::MutexLock outer(mu_);
    roicl::MutexLock inner(aux_mu_);
    ++aux_value_;
  }

 private:
  void BumpLocked() ROICL_REQUIRES(mu_) { ++bumps_; }

  roicl::Mutex mu_;
  roicl::Mutex aux_mu_ ROICL_ACQUIRED_AFTER(mu_);
  roicl::CondVar cv_;
  int value_ ROICL_GUARDED_BY(mu_) = 0;
  int bumps_ ROICL_GUARDED_BY(mu_) = 0;
  int aux_value_ ROICL_GUARDED_BY(aux_mu_) = 0;
};

}  // namespace

int main() {
  BoundedCounter counter;
  counter.Increment();
  counter.TryIncrement();
  counter.OrderedPair();
  counter.WaitUntilAtLeast(1);
  return 0;
}
