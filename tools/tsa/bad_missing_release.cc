// Negative fixture for Clang Thread Safety Analysis: an early return
// leaves the function with the mutex still held, so one path acquires
// without releasing. Must FAIL to compile under -Wthread-safety
// -Werror=thread-safety; the harnesses grep for the EXPECT line below.
//
// EXPECT: still held at the end of function

#include "common/annotated_mutex.h"

namespace {

class Latch {
 public:
  // BAD: the flag path returns while mu_ is held; every later Lock()
  // deadlocks. RAII MutexLock makes this impossible, which is why bare
  // Lock()/Unlock() is reserved for the wrappers and fixtures like this.
  void LeakyLock(bool flag) {
    mu_.Lock();
    if (flag) return;
    mu_.Unlock();
  }

 private:
  roicl::Mutex mu_;
};

}  // namespace

int main() {
  Latch latch;
  latch.LeakyLock(false);
  return 0;
}
