#!/bin/bash
# Builds the numeric-kernel tests under UndefinedBehaviorSanitizer
# (-DROICL_SANITIZE=undefined) and runs them. Wired into ctest as the
# `ubsan` label so `ctest -L ubsan` gives an overflow/UB gate over the
# index math, the conformal quantile machinery, and the metric curves.
#
# Usage: run_ubsan.sh <repo root> [build dir]
# The UBSan build tree is kept separate (default <repo root>/build-ubsan)
# and incremental, so repeat runs only recompile what changed.
set -euo pipefail

repo_root=${1:?usage: run_ubsan.sh <repo root> [build dir]}
build_dir=${2:-"${repo_root}/build-ubsan"}

# The UB-prone surfaces and the tests that exercise them:
#   rng_test           bit-mixing and rotation in the counter-based RNG
#   stats_test         quantile index arithmetic
#   matrix_test        row-pointer arithmetic in the blocked matmul
#   solve_test         divisions in the Cholesky back-substitution
#   drp_loss_test      log/exp in the listwise softmax loss
#   conformal_test     ceil((1-alpha)(n+1))/n quantile index
#   roi_star_test      binary-search bracket arithmetic
#   metrics_test       cumulative cost-curve and Qini integration
#   incremental_quantile_test  rank arithmetic in the order-statistic
#                      treap and its ceil((1-alpha)(n+1)) quantile
#   interval_backend_test  weighted-quantile ratio/cumulative-mass
#                      arithmetic and CQR residual normalization
#   alloc_fuzz_test    int64 index arithmetic, dual-threshold bucket
#                      math, and the frontier prefix-sum cut
ubsan_tests=(rng_test stats_test matrix_test solve_test drp_loss_test
             conformal_test roi_star_test metrics_test
             incremental_quantile_test interval_backend_test
             alloc_fuzz_test)

cmake -S "${repo_root}" -B "${build_dir}" -DROICL_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${build_dir}" --target "${ubsan_tests[@]}" -j "$(nproc)"

status=0
for test in "${ubsan_tests[@]}"; do
  echo "== ubsan: ${test} =="
  # print_stacktrace makes the one report actionable; the build already
  # aborts on the first finding via -fno-sanitize-recover=all.
  if ! UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
      "${build_dir}/tests/${test}"; then
    status=1
  fi
done
exit ${status}
