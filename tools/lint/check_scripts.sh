#!/bin/bash
# Shell-script hygiene lint. PR 1 shipped a ctest entry that failed only
# because a script lost its executable bit in checkout; this lint makes
# that class of regression impossible:
#   1. every *.sh under tools/ and tests/ parses (bash -n);
#   2. every script opts into strict shell semantics (set -euo pipefail)
#      so an unset variable or mid-pipeline failure can't be swallowed;
#   3. every script has the executable bit set;
#   4. ctest test names are unique across the tree (no double
#      registration).
# Lint-registration completeness (every lint wired into exactly one
# add_test) lives in tools/lint/check_lint_manifest.sh, next to the
# manifest it checks.
#
# Usage: check_scripts.sh <repo root>; exits non-zero on violations.
set -euo pipefail
cd "${1:?usage: check_scripts.sh <repo root>}"

status=0

while IFS= read -r script; do
  if ! bash -n "${script}" 2>/dev/null; then
    echo "${script}: does not parse (bash -n failed)"
    status=1
  fi
  if ! grep -q '^set -euo pipefail$' "${script}"; then
    echo "${script}: missing 'set -euo pipefail'"
    status=1
  fi
  if [ ! -x "${script}" ]; then
    echo "${script}: executable bit not set"
    status=1
  fi
done < <(find tools tests -name '*.sh' | sort)

# add_test names must be unique tree-wide.
dupes=$(grep -rh --include='CMakeLists.txt' -oE 'add_test\(NAME [A-Za-z0-9_]+' . \
  | sort | uniq -d || true)
if [ -n "${dupes}" ]; then
  echo "ctest test registered more than once:"
  echo "${dupes}"
  status=1
fi

if [ "${status}" -eq 0 ]; then
  echo "all scripts strict, executable, and uniquely registered"
fi
exit "${status}"
