#!/bin/bash
# Lock-discipline lint for the capability-annotated mutex layer
# (src/common/annotated_mutex.h):
#
#   1. no raw std:: locking primitive (std::mutex, std::condition_variable,
#      std::lock_guard, std::unique_lock, std::scoped_lock,
#      std::shared_mutex, std::shared_lock, std::recursive_mutex) anywhere
#      in src/ outside annotated_mutex.h itself — every lock must be a
#      roicl::Mutex so Clang Thread Safety Analysis can see it;
#   2. every `Mutex` member declared in a src/ header must be referenced
#      by at least one ROICL_GUARDED_BY / ROICL_PT_GUARDED_BY /
#      ROICL_REQUIRES / ROICL_ACQUIRE / ROICL_RELEASE / ROICL_EXCLUDES in
#      that same header — a mutex that guards nothing and gates nothing is
#      either dead weight or an undeclared contract.
#
# Regex-rot guard: when the tree ships annotated_mutex.h, rule 2 must find
# at least 5 annotated Mutex members — if the declaration regex stops
# matching, the lint fails instead of passing vacuously.
#
# Usage: check_lock_discipline.sh <repo root>; exits non-zero on violations.
set -euo pipefail
cd "${1:?usage: check_lock_discipline.sh <repo root>}"

status=0

# --- Rule 1: no raw locking primitives outside the annotated layer.
raw_pattern='std::(mutex|condition_variable|lock_guard|unique_lock|scoped_lock|shared_mutex|shared_lock|recursive_mutex)\b'
raw_hits=$(grep -rnE --include='*.h' --include='*.cc' "${raw_pattern}" src \
  | grep -v 'src/common/annotated_mutex.h' || true)
if [ -n "${raw_hits}" ]; then
  echo "raw std:: locking primitives outside common/annotated_mutex.h"
  echo "(use roicl::Mutex / MutexLock / CondVar so the thread-safety"
  echo "analysis can check the contract):"
  echo "${raw_hits}"
  status=1
fi

# --- Rule 2: every Mutex member in a header is tied to a contract.
members_found=0
while IFS=: read -r header line decl; do
  [ -n "${header}" ] || continue
  members_found=$((members_found + 1))
  member=$(sed -E 's/.*Mutex ([A-Za-z0-9_]+_);.*/\1/' <<<"${decl}")
  if ! grep -qE "ROICL_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|EXCLUDES)\(${member}\)" \
      "${header}"; then
    echo "${header}:${line}: Mutex member '${member}' is referenced by no"
    echo "  ROICL_GUARDED_BY/ROICL_REQUIRES/... contract in this header"
    status=1
  fi
done < <(grep -rnE --include='*.h' \
  '^[[:space:]]*(mutable[[:space:]]+)?Mutex[[:space:]]+[A-Za-z0-9_]+_;' \
  src | grep -v 'src/common/annotated_mutex.h' || true)

if [ -f src/common/annotated_mutex.h ] && [ "${members_found}" -lt 5 ]; then
  echo "regex-rot guard: found only ${members_found} annotated Mutex members"
  echo "in src/ headers (expected >= 5 in a tree that ships"
  echo "annotated_mutex.h) — the member-declaration pattern has rotted"
  status=1
fi

if [ "${status}" -eq 0 ]; then
  echo "lock discipline clean: ${members_found} Mutex members, all under contract"
fi
exit "${status}"
