#!/bin/bash
# Enforces the logging discipline introduced with src/obs: library code
# must not write to stdout/stderr directly — diagnostics go through
# roicl::obs logging, results through the table renderer or return values.
#
# Allowed exceptions:
#   src/obs/           the sinks themselves
#   src/exp/table.cc   the result-table renderer (stdout is its contract)
#   src/common/macros.h  fatal-check macros print right before abort()
#
# Usage: check_no_raw_io.sh <repo root>; exits non-zero on violations.
set -euo pipefail
cd "${1:?usage: check_no_raw_io.sh <repo root>}"

violations=$(grep -rn --include='*.cc' --include='*.h' \
    -E 'std::cout|std::cerr|std::clog|(std::|[^[:alnum:]_."])(printf|fprintf|fputs|puts|fwrite)[[:space:]]*\(' \
    src/ \
  | grep -v '^src/obs/' \
  | grep -v '^src/exp/table\.cc:' \
  | grep -v '^src/common/macros\.h:' \
  || true)

if [ -n "$violations" ]; then
  echo "raw stdout/stderr IO found in src/ (route it through roicl::obs):"
  echo "$violations"
  exit 1
fi
echo "no raw IO outside the allowlist"
