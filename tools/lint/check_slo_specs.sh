#!/bin/bash
# SLO-spec lint: every *.slo file in the tree must parse under the grammar
# that src/obs/slo.cc enforces at runtime (`slo <name> key=value ...`, one
# record per line, `#` comments). The CLI only loads the spec the user
# passes via --slo-spec, so a typo in a committed spec would otherwise sit
# unnoticed until someone replays with it and gets exit 2 at the worst
# time. Checked per record: known keys only, a valid kind, a target in
# range for that kind, integer windows with long > short, and
# 0 < warn_burn <= breach_burn. Duplicate record names within a file are
# rejected too (SloEngine keys its trackers by name).
#
# Usage: check_slo_specs.sh <repo root>; exits non-zero on violations.
set -euo pipefail
cd "${1:?usage: check_slo_specs.sh <repo root>}"

specs=$(find . -name '*.slo' -not -path './build*/*' -not -path './.git/*' \
  | sort)
if [ -z "${specs}" ]; then
  echo "no *.slo files found (spec lint cannot run — configs/ renamed?)"
  exit 1
fi

status=0
while IFS= read -r file; do
  if ! awk '
    BEGIN { req[1] = "kind"; req[2] = "target"
            req[3] = "short_window"; req[4] = "long_window" }
    /^[[:space:]]*(#|$)/ { next }
    {
      records++
      if ($1 != "slo" || NF < 3) {
        printf "%s:%d: expected `slo <name> key=value ...`\n", FILENAME, FNR
        bad = 1; next
      }
      name = $2
      if (name !~ /^[A-Za-z_][A-Za-z0-9_]*$/) {
        printf "%s:%d: bad slo name %s\n", FILENAME, FNR, name; bad = 1
      }
      if (seen[name]++) {
        printf "%s:%d: duplicate slo name %s\n", FILENAME, FNR, name; bad = 1
      }
      delete have
      for (i = 3; i <= NF; i++) {
        if (split($i, kv, "=") != 2 || kv[2] == "") {
          printf "%s:%d: malformed token %s\n", FILENAME, FNR, $i
          bad = 1; continue
        }
        k = kv[1]; v = kv[2]
        if (k !~ /^(kind|target|short_window|long_window|warn_burn|breach_burn)$/) {
          printf "%s:%d: unknown key %s\n", FILENAME, FNR, k; bad = 1; continue
        }
        if (k in have) {
          printf "%s:%d: duplicate key %s\n", FILENAME, FNR, k; bad = 1
        }
        have[k] = v
        if (k != "kind" && v !~ /^-?[0-9]+([.][0-9]+)?$/) {
          printf "%s:%d: %s=%s is not a number\n", FILENAME, FNR, k, v
          bad = 1
        }
      }
      for (r in req) if (!(req[r] in have)) {
        printf "%s:%d: missing required key %s\n", FILENAME, FNR, req[r]
        bad = 1
      }
      if (("kind" in have) && \
          have["kind"] !~ /^(p99_latency_us|reject_rate|coverage_floor|drift_alert_budget)$/) {
        printf "%s:%d: unknown kind %s\n", FILENAME, FNR, have["kind"]
        bad = 1
      } else if (("kind" in have) && ("target" in have)) {
        t = have["target"] + 0
        kind = have["kind"]
        if (kind == "p99_latency_us" && t <= 0) {
          printf "%s:%d: p99_latency_us target must be > 0\n", FILENAME, FNR
          bad = 1
        }
        if (kind != "p99_latency_us" && (t <= 0 || t >= 1)) {
          printf "%s:%d: %s target must be in (0, 1)\n", FILENAME, FNR, kind
          bad = 1
        }
      }
      if (("short_window" in have) && \
          (have["short_window"] !~ /^[0-9]+$/ || have["short_window"] + 0 < 1)) {
        printf "%s:%d: short_window must be an integer >= 1\n", FILENAME, FNR
        bad = 1
      }
      if (("long_window" in have) && have["long_window"] !~ /^[0-9]+$/) {
        printf "%s:%d: long_window must be an integer\n", FILENAME, FNR
        bad = 1
      }
      if (("short_window" in have) && ("long_window" in have) && \
          have["long_window"] + 0 <= have["short_window"] + 0) {
        printf "%s:%d: long_window must exceed short_window\n", FILENAME, FNR
        bad = 1
      }
      if (("warn_burn" in have) && have["warn_burn"] + 0 <= 0) {
        printf "%s:%d: warn_burn must be > 0\n", FILENAME, FNR; bad = 1
      }
      if (("warn_burn" in have) && ("breach_burn" in have) && \
          have["breach_burn"] + 0 < have["warn_burn"] + 0) {
        printf "%s:%d: breach_burn must be >= warn_burn\n", FILENAME, FNR
        bad = 1
      }
    }
    END {
      if (records == 0) {
        printf "%s: no slo records (empty spec)\n", FILENAME; bad = 1
      }
      exit bad
    }
  ' "${file}"; then
    status=1
  fi
done <<<"${specs}"

if [ "${status}" -eq 0 ]; then
  count=$(grep -c . <<<"${specs}")
  echo "all ${count} *.slo files parse cleanly"
fi
exit "${status}"
