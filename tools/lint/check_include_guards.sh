#!/bin/bash
# Header hygiene lint:
#   1. Every header under src/ carries a classic include guard named after
#      its path (src/nn/dense.h -> ROICL_NN_DENSE_H_) — one consistent
#      style repo-wide, no #pragma once mixed in.
#   2. No `using namespace` at any scope in headers: a header-level using
#      directive leaks into every includer and can silently change
#      overload resolution there.
#
# Usage: check_include_guards.sh <repo root>; exits non-zero on violations.
set -euo pipefail
cd "${1:?usage: check_include_guards.sh <repo root>}"

status=0

while IFS= read -r header; do
  rel=${header#src/}
  guard="ROICL_$(echo "${rel%.h}" | tr '[:lower:]/' '[:upper:]_')_H_"

  if grep -q '#pragma once' "${header}"; then
    echo "${header}: uses #pragma once (repo style is ifndef guards)"
    status=1
  fi
  if ! grep -q "^#ifndef ${guard}\$" "${header}" \
     || ! grep -q "^#define ${guard}\$" "${header}"; then
    echo "${header}: missing or misnamed include guard (expected ${guard})"
    status=1
  fi
done < <(find src -name '*.h' | sort)

using_hits=$(grep -rn --include='*.h' \
    -E '^[[:space:]]*using[[:space:]]+namespace[[:space:]]' src/ || true)
if [ -n "${using_hits}" ]; then
  echo "using-namespace directive in headers (leaks into every includer):"
  echo "${using_hits}"
  status=1
fi

if [ "${status}" -eq 0 ]; then
  echo "all headers guarded consistently, none import namespaces"
fi
exit "${status}"
