#!/bin/bash
# Interval-backend coverage lint: every backend registered in
# src/core/interval_backend.h's kIntervalBackendNames must carry
#   1. an artifact roundtrip test (TEST(IntervalBackend,
#      BitwiseRoundtrip<Name>) in tests/interval_backend_test.cc), and
#   2. a monitor-replay smoke row (a `grep -Eq "^<name> "` table
#      assertion in tests/cli_pipeline_test.sh, fed by
#      `--interval-backend all`).
# A backend added to the registry without both would serve intervals no
# test ever persists or replays under shift; this catches it at lint
# time. Extraction is a pure text match against the greppable array
# literal and test-name convention.
#
# Usage: check_interval_backends.sh <repo root>; exits non-zero on
# violations.
set -euo pipefail
cd "${1:?usage: check_interval_backends.sh <repo root>}"

backend_h=src/core/interval_backend.h
roundtrip_test=tests/interval_backend_test.cc
replay_smoke=tests/cli_pipeline_test.sh
status=0

for file in "${backend_h}" "${roundtrip_test}" "${replay_smoke}"; do
  if [ ! -f "${file}" ]; then
    echo "${file}: missing (interval-backend lint cannot run)"
    exit 1
  fi
done

# Pull the quoted names out of the kIntervalBackendNames initializer. The
# count guard protects against regex rot: a rename or reformat that
# empties the extraction must fail loudly, not pass vacuously.
names=$(awk '/kIntervalBackendNames/,/};/' "${backend_h}" \
  | grep -oE '"[^"]+"' | tr -d '"' || true)
count=$(grep -c . <<<"${names}" || true)
if [ -z "${names}" ] || [ "${count}" -lt 2 ]; then
  echo "${backend_h}: could not extract kIntervalBackendNames (regex rot?)"
  exit 1
fi

while IFS= read -r name; do
  # Test-name convention: BitwiseRoundtrip + capitalized backend name
  # (split -> BitwiseRoundtripSplit).
  camel="$(tr '[:lower:]' '[:upper:]' <<<"${name:0:1}")${name:1}"
  if ! grep -qE "BitwiseRoundtrip${camel}\b" "${roundtrip_test}"; then
    echo "${roundtrip_test}: backend '${name}' has no BitwiseRoundtrip${camel} artifact roundtrip test"
    status=1
  fi
  if ! grep -qF "\"^${name} \"" "${replay_smoke}"; then
    echo "${replay_smoke}: backend '${name}' has no monitor-replay smoke row assertion (grep -Eq \"^${name} \")"
    status=1
  fi
done <<<"${names}"

if [ "${status}" -eq 0 ]; then
  echo "all ${count} interval backends have roundtrip tests and replay smoke rows"
fi
exit "${status}"
