#!/bin/bash
# Nondeterminism lint, container half: bans std::unordered_* containers
# (and their includes) in src/. Their iteration order is
# implementation-defined — it varies across libstdc++ versions, hash
# seeds, and insertion histories — and every container in this tree
# ultimately feeds an exported artifact: metric snapshots, Prometheus
# text, serialized pipelines, allocation rankings. Ordered std::map /
# std::set keep those outputs byte-stable, which the determinism tests
# assert. The entropy half of this discipline (rand()/time()/clock reads)
# is tools/lint/check_determinism.sh.
#
# Usage: check_unordered.sh <repo root>; exits non-zero on violations.
set -euo pipefail
cd "${1:?usage: check_unordered.sh <repo root>}"

status=0

hits=$(grep -rnE --include='*.h' --include='*.cc' \
  'std::unordered_(map|set|multimap|multiset)\b|#include <unordered_(map|set)>' \
  src || true)
if [ -n "${hits}" ]; then
  echo "unordered containers in src/ (iteration order is"
  echo "implementation-defined and feeds exported output; use std::map /"
  echo "std::set, or justify a new sanctioned site in this lint):"
  echo "${hits}"
  status=1
fi

if [ "${status}" -eq 0 ]; then
  echo "no unordered containers in src/"
fi
exit "${status}"
