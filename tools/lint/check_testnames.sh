#!/bin/bash
# Test-registration lint: every test source under tests/ must actually be
# wired into ctest. A `*_test.cc` that exists but appears in no
# roicl_add_test() — or a `*_test.sh` harness referenced by no add_test()
# — compiles green locally, shows up in code review as "covered", and
# never runs anywhere. This PR class is easy to hit when a test file is
# added but the CMakeLists hunk is dropped in a rebase.
#
#   1. every tests/*_test.cc is named in a roicl_add_test() entry in
#      tests/CMakeLists.txt (exactly once — double registration would
#      collide at the add_executable level anyway, but the count guard
#      catches copy-paste dupes before CMake does, with a better message);
#   2. every tests/*_test.sh is referenced by some add_test() COMMAND;
#   3. count guards against regex rot: the tree is known to contain many
#      registered tests, so an extraction that suddenly finds almost
#      nothing fails loudly instead of passing vacuously.
#
# Usage: check_testnames.sh <repo root>; exits non-zero on violations.
set -euo pipefail
cd "${1:?usage: check_testnames.sh <repo root>}"

cmakelists=tests/CMakeLists.txt
if [ ! -f "${cmakelists}" ] || [ ! -d tests ]; then
  echo "missing ${cmakelists} or tests/ (testname lint cannot run)"
  exit 1
fi

status=0

# Rule 1: every *_test.cc appears in exactly one roicl_add_test() call.
# Flatten first so two-line registrations still match.
flattened=$(tr '\n' ' ' < "${cmakelists}")
cc_total=0
while IFS= read -r source; do
  name=$(basename "${source}")
  cc_total=$((cc_total + 1))
  count=$(grep -oE "roicl_add_test\( *[A-Za-z0-9_]+ +${name}" \
    <<<"${flattened}" | grep -c . || true)
  if [ "${count}" -eq 0 ]; then
    echo "${source}: not registered in any roicl_add_test() in ${cmakelists}"
    status=1
  elif [ "${count}" -gt 1 ]; then
    echo "${source}: registered ${count} times in ${cmakelists}"
    status=1
  fi
done < <(find tests -maxdepth 1 -name '*_test.cc' | sort)

# Rule 2: every *_test.sh harness is referenced by some add_test().
sh_total=0
while IFS= read -r script; do
  name=$(basename "${script}")
  sh_total=$((sh_total + 1))
  if ! grep -q "${name}" "${cmakelists}"; then
    echo "${script}: referenced by no add_test() in ${cmakelists}"
    status=1
  fi
done < <(find tests -maxdepth 1 -name '*_test.sh' | sort)

# Rule 3: count guards. The repo carries dozens of .cc tests and at
# least one .sh harness; near-zero extraction means the find/grep above
# rotted, not that the tree emptied.
if [ "${cc_total}" -lt 10 ]; then
  echo "tests/: found only ${cc_total} *_test.cc files (regex rot?)"
  status=1
fi
if [ "${sh_total}" -lt 1 ]; then
  echo "tests/: found no *_test.sh harnesses (regex rot?)"
  status=1
fi

if [ "${status}" -eq 0 ]; then
  echo "all ${cc_total} test sources and ${sh_total} harnesses registered"
fi
exit "${status}"
