#!/bin/bash
# Determinism lint: bans ambient-nondeterminism sources in library, tool,
# and example code. The prediction engine's bitwise-reproducibility
# guarantee (see DESIGN.md, "Batched parallel prediction") rests on every
# random draw flowing through common/rng's seeded counter-based streams —
# one stray rand()/random_device/time-seed silently breaks replayability
# without failing a single functional test.
#
# Banned patterns:
#   rand( / std::rand(         C global RNG (shared hidden state)
#   srand(                     seeding the C global RNG (usually from time)
#   std::random_device         hardware entropy — different every run
#   time(nullptr|NULL|0)       wall-clock seeds
#   std::chrono::*_clock::now  wall/steady clock reads in computation
#
# Allowlist (reviewed call sites only):
#   src/common/rng             the seeded RNG implementation itself
#   src/obs/                   timestamps for logs/metrics/traces are
#                              observability data, not computation inputs —
#                              library code gets time via obs::MonotonicMicros
# bench/ is not scanned: benchmark timing is its whole purpose.
#
# Usage: check_determinism.sh <repo root>; exits non-zero on violations.
set -euo pipefail
cd "${1:?usage: check_determinism.sh <repo root>}"

pattern='(^|[^[:alnum:]_])rand[[:space:]]*\(|(^|[^[:alnum:]_])srand[[:space:]]*\(|std::random_device|[^[:alnum:]_]time[[:space:]]*\([[:space:]]*(nullptr|NULL|0)[[:space:]]*\)|std::chrono::[a-z_]+_clock::now'

violations=$(grep -rnE --include='*.cc' --include='*.h' "${pattern}" \
    src/ tools/ examples/ 2>/dev/null \
  | grep -v '^src/common/rng' \
  | grep -v '^src/obs/' \
  || true)

if [ -n "${violations}" ]; then
  echo "nondeterminism sources found (route randomness through common/rng,"
  echo "time through obs::MonotonicMicros):"
  echo "${violations}"
  exit 1
fi
echo "no ambient nondeterminism outside the allowlist"
