#!/bin/bash
# Manifest-completeness check for the tools/lint/ engine — the rule that
# keeps a new lint from silently going unwired anywhere along the chain
# script -> spec -> ctest -> selfcheck:
#
#   1. every tools/lint/check_*.sh has exactly one spec referencing it,
#      and every spec's script exists;
#   2. every spec carries name=/script=/scope=/fixtures= keys, and name
#      matches the spec filename;
#   3. every spec's name is wired into exactly one add_test() across the
#      tree's CMakeLists;
#   4. every lint's fixtures= file exists and mentions the lint by name
#      (selfcheck coverage — a lint nobody proves can still fail is rot
#      waiting to happen);
#   5. legacy top-level rule: every tools/check_*.sh gate (build-matrix
#      driver excepted) is referenced by exactly one add_test.
#
# Rules 1-4 apply when the target tree has a tools/lint/ manifest; rule 5
# always applies. Usage: check_lint_manifest.sh <repo root>.
set -euo pipefail
cd "${1:?usage: check_lint_manifest.sh <repo root>}"

status=0

count_addtest() {
  # Lines registering the test: a literal add_test(NAME <name>), or the
  # roicl_add_lint(<name>) wrapper tests/CMakeLists.txt expands into one.
  { grep -rh --include='CMakeLists.txt' -oE \
      "(add_test\(NAME |roicl_add_lint\()${1}[^A-Za-z0-9_]" . || true; } | wc -l
}

if [ -d tools/lint/specs ]; then
  specs=(tools/lint/specs/*.spec)

  # --- Rules 2-4 over the specs.
  for spec in "${specs[@]}"; do
    name=$(sed -n 's/^name=//p' "${spec}" | head -n 1)
    script=$(sed -n 's/^script=//p' "${spec}" | head -n 1)
    scope=$(sed -n 's/^scope=//p' "${spec}" | head -n 1)
    fixtures=$(sed -n 's/^fixtures=//p' "${spec}" | head -n 1)
    for key in name script scope fixtures; do
      if [ -z "${!key}" ]; then
        echo "${spec}: missing required key '${key}='"
        status=1
      fi
    done
    [ -n "${name}" ] || continue
    if [ "$(basename "${spec}" .spec)" != "${name}" ]; then
      echo "${spec}: name '${name}' does not match spec filename"
      status=1
    fi
    if [ -n "${script}" ] && [ ! -f "tools/lint/${script}" ]; then
      echo "${spec}: script 'tools/lint/${script}' does not exist"
      status=1
    fi
    wired=$(count_addtest "${name}")
    if [ "${wired}" -ne 1 ]; then
      echo "${script:-${name}}: referenced ${wired} times in CMakeLists (expected exactly 1 add_test)"
      status=1
    fi
    if [ -n "${fixtures}" ]; then
      if [ ! -f "${fixtures}" ]; then
        echo "${spec}: fixtures file '${fixtures}' does not exist"
        status=1
      elif ! grep -q "${name}" "${fixtures}"; then
        echo "${spec}: fixtures file '${fixtures}' never mentions '${name}' (no selfcheck coverage)"
        status=1
      fi
    fi
  done

  # --- Rule 1: no spec-less scripts.
  for script in tools/lint/check_*.sh; do
    base=$(basename "${script}")
    refs=$({ grep -l "^script=${base}$" tools/lint/specs/*.spec || true; } \
      | wc -l)
    if [ "${refs}" -ne 1 ]; then
      echo "${base}: referenced by ${refs} specs (expected exactly 1)"
      status=1
    fi
  done
fi

# --- Rule 5: top-level gates stay wired (the pre-manifest rule; now
# covers tools/check_tsa.sh). The build-matrix driver is a manual
# meta-tool, not a ctest entry.
while IFS= read -r gate; do
  name=$(basename "${gate}")
  # `|| true` inside the group: grep exits 1 on zero matches, which under
  # `set -e -o pipefail` would abort the whole lint instead of reporting
  # the unregistered script. Comment lines don't count as wiring.
  count=$({ grep -rh --include='CMakeLists.txt' "${name}" . || true; } \
    | { grep -cv '^[[:space:]]*#' || true; })
  if [ "${count}" -ne 1 ]; then
    echo "${name}: referenced ${count} times in CMakeLists (expected exactly 1 add_test)"
    status=1
  fi
done < <(find tools -maxdepth 1 -name 'check_*.sh' \
  ! -name 'check_build_matrix.sh' | sort)

if [ "${status}" -eq 0 ]; then
  echo "lint manifest complete: scripts, specs, ctest wiring, and selfcheck coverage agree"
fi
exit "${status}"
