#!/bin/bash
# Manifest-driven lint engine. Every source-tree lint lives in this
# directory next to a spec file under specs/ declaring its name, script,
# scope, and selfcheck-fixture location; this runner is the single entry
# point ctest (and humans) go through:
#
#   run_lints.sh <target root>              # run every lint in the manifest
#   run_lints.sh <target root> <name>...    # run the named lints only
#   run_lints.sh --list                     # print the manifest
#
# Scripts and specs are resolved relative to THIS file's directory, while
# the lints scan the <target root> argument — so the selfcheck can aim the
# real lints at a deliberately-bad fixture tree. Spec format (key=value,
# '#' comments):
#
#   name=check_example          # lint name == ctest test name
#   script=check_example.sh     # executable, relative to tools/lint/
#   scope=src tests             # directories the lint scans (documentation;
#                               # the scripts do their own traversal)
#   fixtures=tests/lint_selfcheck_test.sh   # where its bad fixture lives
#
# tools/lint/check_lint_manifest.sh enforces manifest completeness: every
# script has a spec, every spec a script, every name exactly one add_test,
# and every lint a selfcheck fixture.
set -euo pipefail

lint_dir=$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)
spec_dir="${lint_dir}/specs"

spec_field() {
  sed -n "s/^${2}=//p" "${1}" | head -n 1
}

if [ "${1:-}" = "--list" ]; then
  for spec in "${spec_dir}"/*.spec; do
    printf '%-24s %s\n' "$(spec_field "${spec}" name)" \
      "$(spec_field "${spec}" scope)"
  done
  exit 0
fi

target_root=${1:?usage: run_lints.sh <target root> [lint name...]}
shift

selected=("$@")
status=0
ran=0

for spec in "${spec_dir}"/*.spec; do
  name=$(spec_field "${spec}" name)
  script=$(spec_field "${spec}" script)
  if [ "${#selected[@]}" -gt 0 ]; then
    wanted=0
    for want in "${selected[@]}"; do
      if [ "${want}" = "${name}" ]; then wanted=1; fi
    done
    [ "${wanted}" -eq 1 ] || continue
  fi
  if bash "${lint_dir}/${script}" "${target_root}"; then
    echo "lint ${name}: PASS"
  else
    echo "lint ${name}: FAIL" >&2
    status=1
  fi
  ran=$((ran + 1))
done

# Asking for a lint the manifest doesn't know must fail loudly, not
# vacuously pass — the exact rot this engine exists to prevent.
if [ "${#selected[@]}" -gt 0 ] && [ "${ran}" -ne "${#selected[@]}" ]; then
  echo "run_lints.sh: ran ${ran} of ${#selected[@]} requested lints;" \
    "unknown name among: ${selected[*]}" >&2
  status=1
fi
if [ "${ran}" -eq 0 ]; then
  echo "run_lints.sh: no lints ran" >&2
  status=1
fi
exit "${status}"
