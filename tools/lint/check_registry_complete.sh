#!/bin/bash
# Registry-completeness lint: every benchmark method named in
# exp/methods.h's kTable1MethodNames must be registered with the scorer
# registry in pipeline/builtin_scorers.cc. A method added to the Table-I
# list but not the registry would CHECK-fail at runtime in exp/ and be
# invisible to the CLI; this catches it at lint time. The registration
# calls use greppable string literals (`Register("NAME"`) by convention
# so this check stays a pure text match.
#
# Usage: check_registry_complete.sh <repo root>; exits non-zero on
# violations.
set -euo pipefail
cd "${1:?usage: check_registry_complete.sh <repo root>}"

methods_h=src/exp/methods.h
builtins=src/pipeline/builtin_scorers.cc
status=0

for file in "${methods_h}" "${builtins}"; do
  if [ ! -f "${file}" ]; then
    echo "${file}: missing (registry lint cannot run)"
    exit 1
  fi
done

# Pull the quoted names out of the kTable1MethodNames initializer. The
# count guard protects against regex rot: an array rename or reformat
# that empties the extraction must fail loudly, not pass vacuously.
names=$(awk '/kTable1MethodNames/,/};/' "${methods_h}" \
  | grep -oE '"[^"]+"' | tr -d '"' || true)
count=$(grep -c . <<<"${names}" || true)
if [ -z "${names}" ] || [ "${count}" -lt 2 ]; then
  echo "${methods_h}: could not extract kTable1MethodNames (regex rot?)"
  exit 1
fi

while IFS= read -r name; do
  if ! grep -qF "Register(\"${name}\"" "${builtins}"; then
    echo "${builtins}: method '${name}' from kTable1MethodNames has no Register(\"${name}\" call"
    status=1
  fi
done <<<"${names}"

if [ "${status}" -eq 0 ]; then
  echo "all ${count} Table-I methods are registered"
fi
exit "${status}"
