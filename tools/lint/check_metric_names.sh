#!/bin/bash
# Metric-name lint: every metric a library creates by string literal
# (GetCounter/GetGauge/GetHistogram in src/) must be preregistered in the
# CLI's PreregisterStandardMetrics. Preregistration is what makes metrics
# visible in snapshots while still zero — a name minted deep in src/ but
# missing from the CLI list silently disappears from dashboards until its
# first increment, which for error counters may be never. Files are
# flattened before matching so multi-line calls (the name on the line
# after `GetHistogram(`) still count; calls whose name is a runtime
# variable are out of scope by construction.
#
# Usage: check_metric_names.sh <repo root>; exits non-zero on violations.
set -euo pipefail
cd "${1:?usage: check_metric_names.sh <repo root>}"

cli=tools/roicl_cli.cc
if [ ! -f "${cli}" ] || [ ! -d src ]; then
  echo "missing ${cli} or src/ (metric-name lint cannot run)"
  exit 1
fi

# Names used in library code: flatten each file, pull the literal first
# argument of the registry getters.
used=$(
  grep -rlE 'Get(Counter|Gauge|Histogram)' src \
      --include='*.cc' --include='*.h' \
    | while IFS= read -r file; do
        tr '\n' ' ' < "${file}" \
          | grep -oE 'Get(Counter|Gauge|Histogram) *\( *"[^"]+"' || true
      done \
    | grep -oE '"[^"]+"' | tr -d '"' | sort -u
)

# Names preregistered by the CLI: every string literal inside
# PreregisterStandardMetrics is a metric name by convention.
preregistered=$(awk '/void PreregisterStandardMetrics/,/^}/' "${cli}" \
  | grep -oE '"[^"]+"' | tr -d '"' | sort -u)

# Count guards against regex rot: a rename that empties either
# extraction must fail loudly, not pass vacuously.
used_count=$(grep -c . <<<"${used}" || true)
pre_count=$(grep -c . <<<"${preregistered}" || true)
if [ "${used_count}" -lt 10 ]; then
  echo "src/: extracted only ${used_count} metric names (regex rot?)"
  exit 1
fi
if [ "${pre_count}" -lt 10 ]; then
  echo "${cli}: could not extract PreregisterStandardMetrics (regex rot?)"
  exit 1
fi

status=0
while IFS= read -r name; do
  if ! grep -qFx "${name}" <<<"${preregistered}"; then
    echo "${cli}: metric '${name}' used in src/ is not preregistered in PreregisterStandardMetrics"
    status=1
  fi
done <<<"${used}"

# Family guards: the per-stage serving histograms and the SLO-engine
# metrics are load-bearing — load-replay reads serve.stage.* back out of
# the registry for its breakdown and the SLO verdict surfaces through
# slo.*. A rename or removal must fail here, not as an empty BENCH column.
for member in \
    serve.stage.queue_us serve.stage.assemble_us serve.stage.score_us \
    serve.stage.conformal_us serve.stage.observe_us \
    slo.events slo.warn_transitions slo.breach_transitions \
    slo.worst_state \
    alloc.streaming_calls alloc.rows_streamed alloc.frontier_evictions \
    alloc.threshold_overflow alloc.shards alloc.selected \
    alloc.merge_candidates alloc.peak_memory_bytes alloc.dual_threshold \
    alloc.dual_gap \
    campaign.runs campaign.streaming_calls campaign.users_streamed \
    campaign.frontier_evictions campaign.arms campaign.shards \
    campaign.assigned campaign.spent campaign.merge_candidates \
    campaign.peak_memory_bytes campaign.coverage_min campaign.dual_gap; do
  if ! grep -qFx "${member}" <<<"${used}"; then
    echo "src/: expected metric family member '${member}' is no longer minted anywhere"
    status=1
  fi
done

if [ "${status}" -eq 0 ]; then
  echo "all ${used_count} src/ metric names are preregistered"
fi
exit "${status}"
