#!/bin/bash
# Campaign-scorer coverage lint: every K-arm scorer registered in
# src/campaign/scorer.h's kCampaignScorerNames must carry
#   1. a registration call in src/campaign/scorer.cc (the greppable
#      `Register("NAME"` literal convention), and
#   2. a bitwise save->load->predict roundtrip test, announced by a
#      `// campaign-roundtrip: NAME` marker comment in tests/*.cc.
# A scorer name added to the roster without both would either CHECK-fail
# at CampaignScorerRegistry::Create time or ship artifacts no test ever
# proves reproducible; this catches it at lint time. Extraction is a
# pure text match against the array literal and marker convention.
#
# Usage: check_campaign_registry.sh <repo root>; exits non-zero on
# violations.
set -euo pipefail
cd "${1:?usage: check_campaign_registry.sh <repo root>}"

scorer_h=src/campaign/scorer.h
scorer_cc=src/campaign/scorer.cc
status=0

for file in "${scorer_h}" "${scorer_cc}"; do
  if [ ! -f "${file}" ]; then
    echo "${file}: missing (campaign-registry lint cannot run)"
    exit 1
  fi
done
if [ ! -d tests ]; then
  echo "tests/: missing (campaign-registry lint cannot run)"
  exit 1
fi

# Pull the quoted names out of the kCampaignScorerNames initializer. The
# count guard protects against regex rot: a rename or reformat that
# empties the extraction must fail loudly, not pass vacuously.
names=$(awk '/kCampaignScorerNames/,/};/' "${scorer_h}" \
  | grep -oE '"[^"]+"' | tr -d '"' || true)
count=$(grep -c . <<<"${names}" || true)
if [ -z "${names}" ] || [ "${count}" -lt 2 ]; then
  echo "${scorer_h}: could not extract kCampaignScorerNames (regex rot?)"
  exit 1
fi

while IFS= read -r name; do
  if ! grep -qF "Register(\"${name}\"" "${scorer_cc}"; then
    echo "${scorer_cc}: scorer '${name}' from kCampaignScorerNames has no Register(\"${name}\" call"
    status=1
  fi
  if ! grep -rqF "campaign-roundtrip: ${name}" tests --include='*.cc'; then
    echo "tests/: scorer '${name}' has no bitwise save->load->predict roundtrip (marker 'campaign-roundtrip: ${name}' not found)"
    status=1
  fi
done <<<"${names}"

if [ "${status}" -eq 0 ]; then
  echo "all ${count} campaign scorers are registered with roundtrip tests"
fi
exit "${status}"
