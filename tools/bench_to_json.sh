#!/bin/bash
# Runs the prediction-engine micro-benchmarks and writes Google
# Benchmark's JSON reports to the repo root — the committed records
# backing the speedup tables in EXPERIMENTS.md:
#   BENCH_predict.json  batched forward + parallel MC dropout
#   BENCH_serve.json    ScoringService end-to-end throughput
#   BENCH_monitor.json  drift-monitor ingest + rolling recalibration
#   BENCH_allocate.json streaming budget allocation: 1M/10M synthetic
#                       users, sharded greedy + dual threshold, inside
#                       a hard 64 MiB accounted memory cap (peak_mib /
#                       cap_mib counters record the accounting)
#   BENCH_load.json     load-replay adversarial-traffic report (not a
#                       Google Benchmark: the harness's own JSON, with
#                       phase latencies, the serve.stage.* breakdown,
#                       exemplar trace IDs, and the SLO verdict)
#   BENCH_campaign.json K-arm campaign allocation: 1M users x 3 arms and
#                       4M x 8 (32M pairs), sharded best-pair streaming
#                       inside the same hard 64 MiB accounted cap
#
# Usage: bench_to_json.sh <build dir> [predict json] [serve json]
#        [monitor json] [load json] [allocate json] [campaign json]
set -euo pipefail

build_dir=${1:?usage: bench_to_json.sh <build dir> [predict json] [serve json] [monitor json] [load json] [allocate json]}
predict_out=${2:-"$(dirname "$0")/../BENCH_predict.json"}
serve_out=${3:-"$(dirname "$0")/../BENCH_serve.json"}
monitor_out=${4:-"$(dirname "$0")/../BENCH_monitor.json"}
load_out=${5:-"$(dirname "$0")/../BENCH_load.json"}
allocate_out=${6:-"$(dirname "$0")/../BENCH_allocate.json"}
campaign_out=${7:-"$(dirname "$0")/../BENCH_campaign.json"}

bench="${build_dir}/bench/bench_micro"
if [[ ! -x "${bench}" ]]; then
  echo "bench_micro not built at ${bench}" >&2
  exit 1
fi

"${bench}" \
  --benchmark_filter='BM_BatchForward|BM_ParallelMcDropout' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "${predict_out}"
echo "wrote ${predict_out}"

"${bench}" \
  --benchmark_filter='BM_ScoringServiceThroughput' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "${serve_out}"
echo "wrote ${serve_out}"

"${bench}" \
  --benchmark_filter='BM_MonitorUpdate|BM_RollingRecalibrate' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "${monitor_out}"
echo "wrote ${monitor_out}"

# Single repetition: one 10M-row pass already takes seconds and the
# allocation is deterministic (pinned seed, pure-function row source) —
# iteration noise, not run-to-run variance, is the only jitter.
"${bench}" \
  --benchmark_filter='BM_StreamingAllocate' \
  --benchmark_repetitions=1 \
  --benchmark_format=json > "${allocate_out}"
echo "wrote ${allocate_out}"

# Same single-repetition rationale as BENCH_allocate: the K-arm scan is
# deterministic (pinned seed, pure-function pair source).
"${bench}" \
  --benchmark_filter='BM_CampaignAllocate' \
  --benchmark_repetitions=1 \
  --benchmark_format=json > "${campaign_out}"
echo "wrote ${campaign_out}"

# BENCH_load.json: the canonical load-replay run — synth Criteo traffic,
# a small rDRP pipeline, and the committed configs/serving.slo. Seeds are
# pinned so the report reproduces (see EXPERIMENTS.md, "Replay
# adversarial load").
cli="${build_dir}/tools/roicl"
if [[ ! -x "${cli}" ]]; then
  echo "roicl CLI not built at ${cli}" >&2
  exit 1
fi
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
work=$(mktemp -d)
trap 'rm -rf "${work}"' EXIT
"${cli}" generate --dataset criteo --n 4000 --seed 1 --out "${work}/train.csv"
"${cli}" generate --dataset criteo --n 1500 --seed 2 --out "${work}/calib.csv"
"${cli}" generate --dataset criteo --n 2000 --seed 3 --out "${work}/stream.csv"
"${cli}" train --method rdrp --train "${work}/train.csv" \
  --calib "${work}/calib.csv" --epochs 3 --restarts 1 \
  --save-pipeline "${work}/m.pipeline"
"${cli}" load-replay --pipeline "${work}/m.pipeline" \
  --calib "${work}/calib.csv" --data "${work}/stream.csv" \
  --slo-spec "${repo_root}/configs/serving.slo" --out "${load_out}"
echo "wrote ${load_out}"
