#!/bin/bash
# Runs the prediction-engine micro-benchmarks (batched forward, parallel
# MC dropout) and writes Google Benchmark's JSON report to
# BENCH_predict.json at the repo root — the committed record backing the
# speedup table in EXPERIMENTS.md.
#
# Usage: bench_to_json.sh <build dir> [output json]
set -euo pipefail

build_dir=${1:?usage: bench_to_json.sh <build dir> [output json]}
out=${2:-"$(dirname "$0")/../BENCH_predict.json"}

bench="${build_dir}/bench/bench_micro"
if [[ ! -x "${bench}" ]]; then
  echo "bench_micro not built at ${bench}" >&2
  exit 1
fi

"${bench}" \
  --benchmark_filter='BM_BatchForward|BM_ParallelMcDropout' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "${out}"
echo "wrote ${out}"
