#!/bin/bash
# Runs the prediction-engine micro-benchmarks and writes Google
# Benchmark's JSON reports to the repo root — the committed records
# backing the speedup tables in EXPERIMENTS.md:
#   BENCH_predict.json  batched forward + parallel MC dropout
#   BENCH_serve.json    ScoringService end-to-end throughput
#   BENCH_monitor.json  drift-monitor ingest + rolling recalibration
#
# Usage: bench_to_json.sh <build dir> [predict json] [serve json]
#        [monitor json]
set -euo pipefail

build_dir=${1:?usage: bench_to_json.sh <build dir> [predict json] [serve json] [monitor json]}
predict_out=${2:-"$(dirname "$0")/../BENCH_predict.json"}
serve_out=${3:-"$(dirname "$0")/../BENCH_serve.json"}
monitor_out=${4:-"$(dirname "$0")/../BENCH_monitor.json"}

bench="${build_dir}/bench/bench_micro"
if [[ ! -x "${bench}" ]]; then
  echo "bench_micro not built at ${bench}" >&2
  exit 1
fi

"${bench}" \
  --benchmark_filter='BM_BatchForward|BM_ParallelMcDropout' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "${predict_out}"
echo "wrote ${predict_out}"

"${bench}" \
  --benchmark_filter='BM_ScoringServiceThroughput' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "${serve_out}"
echo "wrote ${serve_out}"

"${bench}" \
  --benchmark_filter='BM_MonitorUpdate|BM_RollingRecalibrate' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "${monitor_out}"
echo "wrote ${monitor_out}"
