#!/bin/bash
# Builds the concurrency-sensitive tests under ThreadSanitizer
# (-DROICL_SANITIZE=thread) and runs them. Wired into ctest as the `tsan`
# label so `ctest -L tsan` gives a data-race gate over the ThreadPool,
# the obs metrics/trace singletons, and the batched parallel prediction
# engine.
#
# Usage: run_tsan.sh <repo root> [build dir]
# The TSan build tree is kept separate (default <repo root>/build-tsan)
# and incremental, so repeat runs only recompile what changed.
set -euo pipefail

repo_root=${1:?usage: run_tsan.sh <repo root> [build dir]}
build_dir=${2:-"${repo_root}/build-tsan"}

# The race-prone surfaces and the tests that exercise them:
#   annotated_mutex_test  Mutex/MutexLock/CondVar wrapper semantics:
#                         contention, TryLock, wait/notify reacquisition
#   common_misc_test      ThreadPool submit/ParallelFor/shutdown
#   obs_test              concurrent metrics registry and trace collector
#   determinism_test      batched parallel forward + MC-dropout engine
#   scoring_service_test  ScoringService queue/dispatcher/shutdown,
#                         atomic q_hat swap racing live Submits
#   monitor_test          ServingMonitor mutex + outcome/recalibrate races
#   load_replay_test      adversarial replay: open-loop client threads,
#                         exemplar slots, SLO engine, and the swap_storm
#                         phase racing SetConformalQuantile mid-flight
#   alloc_fuzz_test       concurrent shard accumulation: disjoint
#                         frontiers racing on the shared atomic memory
#                         accountant (ConcurrentShardAccumulation case)
tsan_tests=(annotated_mutex_test common_misc_test obs_test
            determinism_test scoring_service_test monitor_test
            load_replay_test alloc_fuzz_test)

cmake -S "${repo_root}" -B "${build_dir}" -DROICL_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${build_dir}" --target "${tsan_tests[@]}" -j "$(nproc)"

status=0
for test in "${tsan_tests[@]}"; do
  echo "== tsan: ${test} =="
  # halt_on_error keeps the first race's report adjacent to its cause;
  # the non-zero exit fails this script and therefore the ctest entry.
  if ! TSAN_OPTIONS="halt_on_error=1" "${build_dir}/tests/${test}"; then
    status=1
  fi
done
exit ${status}
