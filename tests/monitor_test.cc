// roicl_monitor contract tests: drift statistics and their mergeable
// counter state, the shadow coverage ring, the ACI fallback state, the
// rolling recalibrator, and the ServingMonitor glued to a live pipeline
// and ScoringService. The concurrency tests run under ThreadSanitizer
// (tools/run_tsan.sh) as the data-race gate for the monitoring layer —
// in particular the atomic q_hat swap racing concurrent scoring.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/math_util.h"
#include "core/conformal.h"
#include "core/interval_backend.h"
#include "monitor/coverage_tracker.h"
#include "monitor/drift.h"
#include "monitor/monitor.h"
#include "monitor/recalibrate.h"
#include "monitor/replay.h"
#include "pipeline/pipeline.h"
#include "pipeline/service.h"
#include "synth/shift.h"
#include "synth/synthetic_generator.h"

namespace {

using namespace roicl;
using namespace roicl::monitor;

RctDataset Gen(int n, uint64_t seed, bool shifted = false) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(seed);
  return generator.Generate(n, shifted, &rng);
}

/// A calibrated backend over a tiny synthetic calibration set — the
/// streaming-score source for direct recalibrator tests, no pipeline
/// needed.
std::unique_ptr<core::IntervalBackend> CalibratedBackend(
    const std::string& name = "split") {
  auto backend = std::move(core::MakeIntervalBackend(name)).value();
  Matrix x;
  std::vector<double> roi_hat;
  std::vector<double> r_hat;
  std::vector<double> roi_star;
  for (int i = 0; i < 20; ++i) {
    x.AppendRow({0.1 * i, 1.0 - 0.05 * i});
    roi_hat.push_back(0.3 + 0.02 * i);
    r_hat.push_back(0.08 + 0.01 * (i % 4));
    roi_star.push_back(0.5);
  }
  ROICL_CHECK(backend
                  ->Calibrate(x, roi_hat, r_hat, roi_star, /*alpha=*/0.1,
                              core::kDefaultStdFloor)
                  .ok());
  // The served-score weight variable (what ServingMonitor's construction
  // wires in); gives the weighted backend its reference bins.
  backend->SetWeightReference(roi_hat);
  return backend;
}

/// Small-budget rDRP pipeline with a real conformal quantile.
pipeline::Pipeline TrainSmallRdrp(uint64_t seed = 21) {
  pipeline::Hyperparams hp;
  hp.neural_epochs = 4;
  hp.restarts = 1;
  hp.mc_passes = 5;
  hp.seed = seed;
  RctDataset train = Gen(300, seed);
  RctDataset calib = Gen(150, seed + 1);
  return std::move(
             pipeline::Pipeline::Train("rDRP", hp, train, &calib, {}))
      .value();
}

// ---------------------------------------------------------------------
// Drift statistics

TEST(ReferenceDistribution, QuantileBinsCoverTheLine) {
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(i * 0.01);
  ReferenceDistribution ref =
      ReferenceDistribution::FromSamples(samples, 10);
  ASSERT_EQ(ref.num_bins(), 10);
  ASSERT_EQ(ref.edges().size(), 9u);
  // Outliers on both sides land in the outermost bins.
  EXPECT_EQ(ref.BinOf(-1e9), 0);
  EXPECT_EQ(ref.BinOf(1e9), 9);
  // Reference mass is a floored, renormalized probability vector.
  double total = 0.0;
  for (double p : ref.probabilities()) {
    EXPECT_GT(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(DriftStatistics, NearZeroOnSameDistributionLargeOnShift) {
  std::vector<double> samples;
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) samples.push_back(rng.Normal());
  ReferenceDistribution ref =
      ReferenceDistribution::FromSamples(samples, 10);

  WindowCounts same(ref.num_bins());
  WindowCounts shifted(ref.num_bins());
  for (int i = 0; i < 2000; ++i) {
    same.Add(ref.BinOf(rng.Normal()));
    shifted.Add(ref.BinOf(rng.Normal() + 3.0));
  }
  EXPECT_LT(PopulationStabilityIndex(ref, same), 0.1);
  EXPECT_LT(BinnedKsStatistic(ref, same), 0.1);
  EXPECT_GT(PopulationStabilityIndex(ref, shifted), 1.0);
  EXPECT_GT(BinnedKsStatistic(ref, shifted), 0.5);
  // Empty windows are defined (zero), not NaN.
  WindowCounts empty(ref.num_bins());
  EXPECT_EQ(PopulationStabilityIndex(ref, empty), 0.0);
  EXPECT_EQ(BinnedKsStatistic(ref, empty), 0.0);
}

TEST(WindowCounts, MergeIsOrderInvariantBitwise) {
  std::vector<double> samples;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) samples.push_back(rng.Normal());
  ReferenceDistribution ref =
      ReferenceDistribution::FromSamples(samples, 8);

  std::vector<double> stream;
  for (int i = 0; i < 999; ++i) stream.push_back(rng.Normal() + 0.5);

  // Serial accumulation vs three partials merged in reverse order.
  WindowCounts serial(ref.num_bins());
  for (double v : stream) serial.Add(ref.BinOf(v));
  WindowCounts parts[3] = {WindowCounts(ref.num_bins()),
                           WindowCounts(ref.num_bins()),
                           WindowCounts(ref.num_bins())};
  for (size_t i = 0; i < stream.size(); ++i) {
    parts[i % 3].Add(ref.BinOf(stream[i]));
  }
  WindowCounts merged(ref.num_bins());
  merged.Merge(parts[2]);
  merged.Merge(parts[0]);
  merged.Merge(parts[1]);

  EXPECT_EQ(merged.counts, serial.counts);
  EXPECT_EQ(merged.total, serial.total);
  EXPECT_EQ(PopulationStabilityIndex(ref, merged),
            PopulationStabilityIndex(ref, serial));
  EXPECT_EQ(BinnedKsStatistic(ref, merged),
            BinnedKsStatistic(ref, serial));
}

TEST(DriftDetector, TriggersAboveThresholdAndResetsTumblingWindows) {
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.Normal());
  DriftThresholds thresholds;
  thresholds.min_window = 100;
  DriftDetector detector(thresholds);
  int channel = detector.AddChannel(
      "x", ReferenceDistribution::FromSamples(samples, 10));

  // Tiny window: statistics reported but never triggered.
  WindowCounts tiny = detector.MakeCounts(channel);
  for (int i = 0; i < 20; ++i) {
    detector.Accumulate(channel, rng.Normal() + 5.0, &tiny);
  }
  detector.Commit(channel, tiny);
  std::vector<DriftReport> reports = detector.Evaluate(/*reset=*/true);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].triggered) << "below min_window";

  // Full shifted window triggers; reset=true empties it again.
  WindowCounts counts = detector.MakeCounts(channel);
  for (int i = 0; i < 500; ++i) {
    detector.Accumulate(channel, rng.Normal() + 5.0, &counts);
  }
  detector.Commit(channel, counts);
  reports = detector.Evaluate(/*reset=*/true);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].triggered);
  EXPECT_GT(reports[0].psi, reports[0].psi_threshold);
  EXPECT_EQ(reports[0].window_n, 500u);
  EXPECT_EQ(detector.min_window_n(), 0u) << "tumbling reset";
}

// ---------------------------------------------------------------------
// Coverage tracker + ACI state

TEST(CoverageTracker, EdgeTriggeredAlertAndRingEviction) {
  CoverageTrackerOptions options;
  options.window = 100;
  options.alpha = 0.1;
  options.slack = 0.05;
  options.min_count = 10;
  CoverageTracker tracker(options);
  EXPECT_EQ(tracker.coverage(), 1.0) << "defined before any observation";

  // Healthy stream: no alert.
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(tracker.Observe(true));
  EXPECT_EQ(tracker.coverage(), 1.0);

  // Miscoverage burst: exactly one alert edge for the excursion.
  int alerts = 0;
  for (int i = 0; i < 30; ++i) alerts += tracker.Observe(false);
  EXPECT_EQ(alerts, 1);
  EXPECT_TRUE(tracker.alerting());
  EXPECT_LT(tracker.coverage(), tracker.alert_threshold());

  // Recovery: the bad bits age out of the ring, the alert clears, and a
  // fresh excursion raises a fresh edge.
  for (int i = 0; i < 150; ++i) tracker.Observe(true);
  EXPECT_FALSE(tracker.alerting());
  EXPECT_EQ(tracker.coverage(), 1.0) << "ring fully evicted the misses";
  alerts = 0;
  for (int i = 0; i < 30; ++i) alerts += tracker.Observe(false);
  EXPECT_EQ(alerts, 1);
}

TEST(AdaptiveAlpha, WalksTowardCoverageAndStaysClamped) {
  AdaptiveAlpha aci(/*target_alpha=*/0.1, /*gamma=*/0.05);
  EXPECT_EQ(aci.value(), 0.1);
  // Persistent misses shrink alpha (wider intervals)...
  for (int i = 0; i < 1000; ++i) aci.Update(false);
  EXPECT_LT(aci.value(), 0.1);
  EXPECT_GT(aci.value(), 0.0) << "clamped away from 0";
  // ...and persistent coverage grows it (narrower intervals), bounded.
  for (int i = 0; i < 10000; ++i) aci.Update(true);
  EXPECT_GT(aci.value(), 0.1);
  EXPECT_LE(aci.value(), 0.5) << "clamped below 1";
  aci.Reset();
  EXPECT_EQ(aci.value(), 0.1);
}

// ---------------------------------------------------------------------
// Rolling recalibrator

TEST(RollingRecalibrator, WindowIsBoundedAndGatesTheLabeledPath) {
  auto backend = CalibratedBackend();
  RecalibratorOptions options;
  options.max_window = 100;
  options.min_labeled = 50;
  RollingRecalibrator recal(backend.get(), /*roi_star_anchor=*/0.5,
                            {1.0, 2.0, 3.0}, /*target_alpha=*/0.1,
                            options);
  EXPECT_FALSE(recal.CanRecalibrateLabeled());

  // Treated-only feedback never supports Algorithm 2...
  RctDataset data = Gen(200, 31);
  for (int i = 0; i < data.n(); ++i) {
    FeedbackSample sample;
    sample.x = data.x.Row(i);
    sample.treatment = 1;
    sample.y_revenue = data.y_revenue[AsSize(i)];
    sample.y_cost = data.y_cost[AsSize(i)] + 1.0;  // positive cost
    sample.roi_hat = 0.4;
    sample.r_hat = 0.1;
    recal.AddOutcome(std::move(sample));
  }
  EXPECT_EQ(recal.window_n(), 100u) << "oldest outcomes evicted";
  EXPECT_FALSE(recal.CanRecalibrateLabeled()) << "control arm missing";

  // ...but a genuine two-arm window with positive cost lift does.
  for (int i = 0; i < data.n(); ++i) {
    FeedbackSample sample;
    sample.x = data.x.Row(i);
    sample.treatment = data.treatment[AsSize(i)];
    sample.y_revenue = data.y_revenue[AsSize(i)];
    sample.y_cost = data.treatment[AsSize(i)] == 1
                        ? data.y_cost[AsSize(i)] + 2.0
                        : data.y_cost[AsSize(i)];
    sample.roi_hat = 0.4;
    sample.r_hat = 0.1;
    recal.AddOutcome(std::move(sample));
  }
  EXPECT_TRUE(recal.CanRecalibrateLabeled());
  RctDataset window = recal.WindowDataset();
  EXPECT_EQ(window.n(), 100);
  EXPECT_EQ(window.dim(), data.dim());
}

TEST(RollingRecalibrator, FallbackRequantilesCalibrationScoresViaAci) {
  auto backend = CalibratedBackend();
  std::vector<double> calibration_scores;
  for (int i = 1; i <= 100; ++i) calibration_scores.push_back(i * 0.1);
  RecalibratorOptions options;
  options.min_labeled = 50;  // empty window -> label-free path
  RollingRecalibrator recal(backend.get(), /*roi_star_anchor=*/0.5,
                            calibration_scores, /*target_alpha=*/0.1,
                            options);

  // Drive ACI downward with persistent misses: the fallback quantile
  // must widen (a smaller effective alpha picks a higher score rank).
  StatusOr<RecalibrationResult> before =
      recal.Recalibrate(/*q_hat_current=*/1.0, {});
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_TRUE(before.value().performed);
  EXPECT_FALSE(before.value().labeled);
  EXPECT_FALSE(before.value().weighted_fallback)
      << "split backend has no weight bins";
  for (int i = 0; i < 200; ++i) recal.ObserveCoverage(false);
  StatusOr<RecalibrationResult> after =
      recal.Recalibrate(/*q_hat_current=*/1.0, {});
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after.value().labeled);
  EXPECT_LT(after.value().alpha_used, 0.1);
  EXPECT_GE(after.value().q_hat_after, before.value().q_hat_after);
}

TEST(RollingRecalibrator, WeightedFallbackRepairsUnderShiftedLiveMass) {
  auto backend = CalibratedBackend("weighted");
  ASSERT_GT(backend->WeightBins(), 0u);
  std::vector<double> calibration_scores(backend->calibration_scores());
  RecalibratorOptions options;
  options.min_labeled = 50;  // empty window -> label-free path
  RollingRecalibrator recal(backend.get(), /*roi_star_anchor=*/0.5,
                            calibration_scores, /*target_alpha=*/0.2,
                            options);

  // Uniform live mass: the weighted quantile must agree with the plain
  // unweighted rank over the same scores.
  std::vector<double> uniform(backend->WeightBins(), 5.0);
  StatusOr<RecalibrationResult> base =
      recal.Recalibrate(/*q_hat_current=*/1.0, uniform);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_TRUE(base.value().weighted_fallback);
  EXPECT_FALSE(base.value().labeled);
  EXPECT_EQ(base.value().alpha_used, 0.2);
  double unweighted =
      core::ConformalScoreQuantile(calibration_scores, 0.2);
  EXPECT_EQ(base.value().q_hat_after, unweighted);

  // Live mass piled into the top bin (the hard, high-score traffic):
  // the likelihood ratio upweights large calibration scores, so the
  // quantile must not shrink.
  std::vector<double> skewed(backend->WeightBins(), 0.0);
  skewed.back() = 50.0;
  StatusOr<RecalibrationResult> shifted =
      recal.Recalibrate(/*q_hat_current=*/1.0, skewed);
  ASSERT_TRUE(shifted.ok()) << shifted.status().ToString();
  EXPECT_TRUE(shifted.value().weighted_fallback);
  EXPECT_GE(shifted.value().q_hat_after, base.value().q_hat_after);
}

TEST(RollingRecalibrator, LabeledPathRecomputesRoiStarAndQuantile) {
  auto backend = CalibratedBackend();
  RecalibratorOptions options;
  options.min_labeled = 50;
  RollingRecalibrator recal(backend.get(), /*roi_star_anchor=*/0.5,
                            {0.5, 1.0, 1.5}, /*target_alpha=*/0.1,
                            options);
  RctDataset feedback = Gen(300, 41);
  for (int i = 0; i < feedback.n(); ++i) {
    FeedbackSample sample;
    sample.x = feedback.x.Row(i);
    sample.treatment = feedback.treatment[AsSize(i)];
    sample.y_revenue = feedback.y_revenue[AsSize(i)];
    sample.y_cost = feedback.y_cost[AsSize(i)];
    sample.roi_hat = 0.3 + 0.001 * (i % 100);
    sample.r_hat = 0.05 + 0.01 * (i % 5);
    recal.AddOutcome(std::move(sample));
  }
  ASSERT_TRUE(recal.CanRecalibrateLabeled());
  StatusOr<RecalibrationResult> result =
      recal.Recalibrate(/*q_hat_current=*/2.0, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().performed);
  EXPECT_TRUE(result.value().labeled);
  EXPECT_EQ(result.value().q_hat_before, 2.0);
  EXPECT_EQ(result.value().alpha_used, 0.1);
  EXPECT_EQ(result.value().window_n, 300u);
  EXPECT_TRUE(std::isfinite(result.value().roi_star));
  EXPECT_TRUE(std::isfinite(result.value().q_hat_after));
  EXPECT_GE(result.value().q_hat_after, 0.0);
  EXPECT_EQ(recal.roi_star_anchor(), result.value().roi_star)
      << "labeled path re-anchors the window scores";

  // The incremental-quantile answer must be bitwise the batch Algorithm
  // 3 recompute over the same cached ingredients at the window roi*.
  std::vector<double> batch_scores;
  RctDataset window = recal.WindowDataset();
  for (int i = 0; i < feedback.n(); ++i) {
    double score = backend->StreamScore(0.3 + 0.001 * (i % 100),
                                        0.05 + 0.01 * (i % 5),
                                        result.value().roi_star, 0.0, 0.0);
    batch_scores.push_back(score);
  }
  EXPECT_EQ(result.value().q_hat_after,
            core::ConformalScoreQuantile(batch_scores, 0.1));
}

// ---------------------------------------------------------------------
// ServingMonitor

TEST(ServingMonitor, RequiresConformalScorerAndMatchingDimensions) {
  pipeline::Hyperparams hp;
  hp.neural_epochs = 3;
  hp.restarts = 1;
  RctDataset train = Gen(200, 51);
  pipeline::Pipeline drp = std::move(
      pipeline::Pipeline::Train("DRP", hp, train, nullptr, {})).value();
  StatusOr<std::unique_ptr<ServingMonitor>> no_conformal =
      ServingMonitor::FromCalibration(&drp, Gen(100, 52), {});
  ASSERT_FALSE(no_conformal.ok());
  EXPECT_NE(no_conformal.status().message().find("conformal quantile"),
            std::string::npos)
      << no_conformal.status().ToString();

  pipeline::Pipeline rdrp = TrainSmallRdrp();
  StatusOr<std::unique_ptr<ServingMonitor>> empty =
      ServingMonitor::FromCalibration(&rdrp, RctDataset{}, {});
  EXPECT_FALSE(empty.ok());
}

TEST(ServingMonitor, DetectsInjectedShiftAndSwapsQuantile) {
  pipeline::Pipeline pipeline = TrainSmallRdrp();
  RctDataset calib = Gen(300, 61);

  MonitorOptions options;
  options.window_rows = 256;
  options.thresholds.min_window = 128;
  options.recalibrator.min_labeled = 100;
  StatusOr<std::unique_ptr<ServingMonitor>> monitor_or =
      ServingMonitor::FromCalibration(&pipeline, calib, options);
  ASSERT_TRUE(monitor_or.ok()) << monitor_or.status().ToString();
  ServingMonitor& monitor = *monitor_or.value();

  // In-distribution traffic: no latch.
  RctDataset base = Gen(512, 62);
  monitor.ObserveScored(base.x, pipeline.Score(base.x).value());
  EXPECT_FALSE(monitor.drift_latched());
  EXPECT_EQ(monitor.rows_seen(), 512u);

  // Shifted traffic latches the detector.
  Rng rng(63);
  RctDataset shifted = synth::ResampleWithCovariateShift(
      Gen(1000, 64), /*feature=*/0, /*gamma=*/3.0, /*n_out=*/512, &rng);
  monitor.ObserveScored(shifted.x, pipeline.Score(shifted.x).value());
  ASSERT_TRUE(monitor.drift_latched());
  ASSERT_FALSE(monitor.last_reports().empty());

  // Recalibration without a bound swap target is a hard error...
  StatusOr<RecalibrationResult> unbound = monitor.MaybeRecalibrate();
  ASSERT_FALSE(unbound.ok());
  EXPECT_EQ(unbound.status().code(), StatusCode::kFailedPrecondition);

  // ...and with one it swaps the live quantile and clears the latch.
  ASSERT_TRUE(monitor.AddOutcomes(shifted).ok());
  double q_before = pipeline.conformal_quantile().value();
  monitor.BindQuantileSwap([&pipeline](double q_hat) {
    return pipeline.SetConformalQuantile(q_hat);
  });
  StatusOr<RecalibrationResult> recal = monitor.MaybeRecalibrate();
  ASSERT_TRUE(recal.ok()) << recal.status().ToString();
  EXPECT_TRUE(recal.value().performed);
  EXPECT_EQ(recal.value().q_hat_before, q_before);
  EXPECT_EQ(pipeline.conformal_quantile().value(),
            recal.value().q_hat_after);
  EXPECT_FALSE(monitor.drift_latched());

  // Nothing latched, no cadence: the next call is a no-op.
  StatusOr<RecalibrationResult> idle = monitor.MaybeRecalibrate();
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle.value().performed);
}

TEST(ServingMonitor, CommittedStateBitIdenticalAtAnyThreadCount) {
  pipeline::Pipeline pipeline = TrainSmallRdrp();
  RctDataset calib = Gen(300, 71);
  RctDataset traffic = Gen(700, 72);
  std::vector<double> scores = pipeline.Score(traffic.x).value();

  // The same traffic through monitors configured serial / threaded /
  // shared-pool must evaluate to bitwise-identical drift statistics.
  std::vector<std::vector<DriftReport>> all_reports;
  for (int threads : {1, 4, 0}) {
    MonitorOptions options;
    options.window_rows = 700;
    options.thresholds.min_window = 64;
    options.engine.batch_size = 64;
    options.engine.num_threads = threads;
    StatusOr<std::unique_ptr<ServingMonitor>> monitor_or =
        ServingMonitor::FromCalibration(&pipeline, calib, options);
    ASSERT_TRUE(monitor_or.ok()) << monitor_or.status().ToString();
    // Feed in two chunks to exercise carry-over between calls.
    std::vector<int> head, tail;
    for (int i = 0; i < traffic.n(); ++i) {
      (i < 301 ? head : tail).push_back(i);
    }
    RctDataset first = traffic.Subset(head);
    RctDataset second = traffic.Subset(tail);
    monitor_or.value()->ObserveScored(
        first.x, {scores.begin(), scores.begin() + 301});
    monitor_or.value()->ObserveScored(
        second.x, {scores.begin() + 301, scores.end()});
    all_reports.push_back(monitor_or.value()->last_reports());
  }
  ASSERT_EQ(all_reports.size(), 3u);
  for (size_t v = 1; v < all_reports.size(); ++v) {
    ASSERT_EQ(all_reports[v].size(), all_reports[0].size());
    for (size_t c = 0; c < all_reports[0].size(); ++c) {
      EXPECT_EQ(all_reports[v][c].psi, all_reports[0][c].psi)
          << all_reports[0][c].channel;
      EXPECT_EQ(all_reports[v][c].ks, all_reports[0][c].ks)
          << all_reports[0][c].channel;
      EXPECT_EQ(all_reports[v][c].window_n, all_reports[0][c].window_n);
    }
  }
}

TEST(ServingMonitor, ConcurrentObserveOutcomesAndRecalibrateAreRaceFree) {
  // TSan target: scored traffic, labeled feedback, quantile swaps, and
  // accessor reads hammering one monitor from distinct threads while a
  // live ScoringService (whose dispatcher invokes ObserveScored through
  // on_scored) scores concurrently with the atomic q_hat swap.
  pipeline::Pipeline pipeline = TrainSmallRdrp();
  RctDataset calib = Gen(250, 81);

  auto hook = std::make_shared<std::atomic<ServingMonitor*>>(nullptr);
  pipeline::ServiceOptions service_options;
  service_options.engine.num_threads = 2;
  service_options.on_scored = [hook](const pipeline::ServeContext&,
                                     const Matrix& x,
                                     const std::vector<double>& scores) {
    ServingMonitor* monitor = hook->load();
    if (monitor != nullptr) monitor->ObserveScored(x, scores);
  };
  pipeline::ScoringService service(std::move(pipeline), service_options);

  MonitorOptions options;
  options.window_rows = 128;
  options.thresholds.min_window = 64;
  options.recalibrator.min_labeled = 50;
  StatusOr<std::unique_ptr<ServingMonitor>> monitor_or =
      ServingMonitor::FromCalibration(&service.pipeline(), calib, options);
  ASSERT_TRUE(monitor_or.ok()) << monitor_or.status().ToString();
  ServingMonitor& monitor = *monitor_or.value();
  monitor.BindQuantileSwap([&service](double q_hat) {
    return service.SetConformalQuantile(q_hat);
  });
  hook->store(&monitor);

  RctDataset traffic = Gen(64, 82);
  RctDataset feedback = Gen(64, 83);
  std::vector<std::thread> workers;
  workers.emplace_back([&] {
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(service.Score(traffic.x).ok());
    }
  });
  workers.emplace_back([&] {
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(monitor.AddOutcomes(feedback).ok());
    }
  });
  workers.emplace_back([&] {
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(monitor.MaybeRecalibrate(/*force=*/true).ok());
    }
  });
  workers.emplace_back([&] {
    double sink = 0.0;
    for (int i = 0; i < 200; ++i) {
      sink += monitor.coverage() + monitor.adaptive_alpha();
      sink += monitor.drift_latched() ? 1.0 : 0.0;
    }
    EXPECT_TRUE(std::isfinite(sink));
  });
  for (std::thread& worker : workers) worker.join();
  // The swapped quantile is always a finite, valid value.
  double q_final = service.pipeline().conformal_quantile().value();
  EXPECT_TRUE(std::isfinite(q_final));
  EXPECT_GE(q_final, 0.0);
}

// ---------------------------------------------------------------------
// Replay harness

TEST(ReplayHarness, DetectsMidStreamShiftAndRecalibrates) {
  pipeline::Pipeline pipeline = TrainSmallRdrp();
  RctDataset calib = Gen(300, 91);
  RctDataset stream = Gen(900, 92);

  ReplayOptions options;
  options.batch_rows = 128;
  options.num_batches = 10;
  options.shift_at_batch = 5;
  options.shift_gamma = 3.0;
  options.monitor.window_rows = 256;
  options.monitor.thresholds.min_window = 128;
  // Looser-than-default thresholds so a small-sample statistical blip on
  // the in-distribution prefix cannot trigger: the injected gamma = 3
  // shift measures psi ~ 7 and ks ~ 0.9, far above either bar, while
  // 256-row noise stays well below it.
  options.monitor.thresholds.psi = 0.5;
  options.monitor.thresholds.ks = 0.4;
  options.monitor.recalibrator.min_labeled = 200;
  StatusOr<ReplayResult> replayed =
      RunReplay(std::move(pipeline), calib, stream, options);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  const ReplayResult& result = replayed.value();

  ASSERT_EQ(result.batches.size(), 10u);
  EXPECT_EQ(result.shift_batch, 5);
  ASSERT_GE(result.detect_batch, 5) << "shift missed";
  EXPECT_LE(result.detect_batch, 7) << "detection latency too high";
  ASSERT_GE(result.recalibrate_batch, result.detect_batch);
  EXPECT_NE(result.q_hat_final, result.q_hat_initial);
  for (const ReplayBatchStat& stat : result.batches) {
    EXPECT_TRUE(std::isfinite(stat.q_hat));
    EXPECT_GE(stat.coverage, 0.0);
    EXPECT_LE(stat.coverage, 1.0);
  }
  // Pre-shift batches keep the pristine calibration quantile.
  for (int b = 0; b < result.shift_batch; ++b) {
    EXPECT_EQ(result.batches[AsSize(b)].q_hat, result.q_hat_initial);
  }
}

TEST(ReplayHarness, RejectsBadOptions) {
  pipeline::Pipeline pipeline = TrainSmallRdrp();
  RctDataset calib = Gen(120, 93);
  RctDataset stream = Gen(200, 94);
  ReplayOptions options;
  options.batch_rows = 0;
  EXPECT_FALSE(
      RunReplay(std::move(pipeline), calib, stream, options).ok());

  pipeline::Pipeline pipeline2 = TrainSmallRdrp();
  ReplayOptions shifted_out_of_range;
  shifted_out_of_range.shift_feature = stream.dim();
  EXPECT_FALSE(RunReplay(std::move(pipeline2), calib, stream,
                         shifted_out_of_range)
                   .ok());
}

}  // namespace
