#include "common/stats.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"

namespace roicl {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats stats;
  std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double v : values) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_NEAR(stats.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_EQ(stats.mean(), 3.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.sample_variance(), 0.0);
}

TEST(MeanStdDevTest, Basics) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_NEAR(StdDev({1.0, 1.0, 1.0}), 0.0, 1e-12);
  EXPECT_NEAR(StdDev({0.0, 2.0}), 1.0, 1e-12);
}

TEST(QuantileTest, EndpointsAndMedian) {
  std::vector<double> values = {3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 3.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.25), 2.5);
}

TEST(ConformalQuantileTest, ExactRank) {
  // n = 9, alpha = 0.1 -> rank ceil(0.9 * 10) = 9 -> 9th smallest.
  std::vector<double> scores = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_DOUBLE_EQ(ConformalQuantile(scores, 0.1), 9.0);
  // n = 9, alpha = 0.5 -> rank ceil(0.5 * 10) = 5.
  EXPECT_DOUBLE_EQ(ConformalQuantile(scores, 0.5), 5.0);
}

TEST(ConformalQuantileTest, InfiniteWhenTooFewSamples) {
  // n = 3, alpha = 0.1 -> rank ceil(0.9 * 4) = 4 > 3.
  std::vector<double> scores = {1, 2, 3};
  EXPECT_TRUE(std::isinf(ConformalQuantile(scores, 0.1)));
}

TEST(ConformalQuantileTest, UnsortedInput) {
  std::vector<double> scores = {5, 1, 4, 2, 3, 9, 7, 8, 6};
  EXPECT_DOUBLE_EQ(ConformalQuantile(scores, 0.5), 5.0);
}

// Property: the conformal quantile upper-bounds at least (1-alpha)(n+1)-1
// of the n scores, the finite-sample coverage workhorse.
class ConformalQuantileProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ConformalQuantileProperty, DominatesEnoughScores) {
  auto [n, alpha] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 1000 + alpha * 100));
  std::vector<double> scores(AsSize(n));
  for (double& s : scores) s = rng.Exponential(1.0);
  double q = ConformalQuantile(scores, alpha);
  if (std::isinf(q)) {
    EXPECT_GT(std::ceil((1 - alpha) * (n + 1)), n);
    return;
  }
  int dominated = 0;
  for (double s : scores) dominated += (s <= q);
  EXPECT_GE(dominated, static_cast<int>(std::ceil((1 - alpha) * (n + 1))));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConformalQuantileProperty,
    ::testing::Combine(::testing::Values(5, 20, 100, 999),
                       ::testing::Values(0.05, 0.1, 0.2, 0.5)));

TEST(CorrelationTest, PerfectAndAnti) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 4, 6, 8, 10};
  std::vector<double> c = {5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
}

TEST(CorrelationTest, ConstantInputGivesZero) {
  std::vector<double> a = {1, 1, 1, 1};
  std::vector<double> b = {1, 2, 3, 4};
  EXPECT_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(CorrelationTest, SpearmanInvariantToMonotoneTransform) {
  std::vector<double> a = {0.1, 0.5, 0.2, 0.9, 0.3};
  std::vector<double> b = {1.0, 2.0, 1.5, 4.0, 1.7};
  std::vector<double> b_exp(b.size());
  for (size_t i = 0; i < b.size(); ++i) b_exp[i] = std::exp(b[i]);
  EXPECT_NEAR(SpearmanCorrelation(a, b), SpearmanCorrelation(a, b_exp),
              1e-12);
}

TEST(RanksTest, TiesGetAverageRank) {
  std::vector<double> ranks = Ranks({10.0, 20.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(ranks[0], 0.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.5);
  EXPECT_DOUBLE_EQ(ranks[2], 1.5);
  EXPECT_DOUBLE_EQ(ranks[3], 3.0);
}

}  // namespace
}  // namespace roicl
