#include <gtest/gtest.h>

#include "common/math_util.h"
#include "exp/datasets.h"
#include "exp/methods.h"
#include "exp/runner.h"
#include "exp/setting.h"
#include "exp/table.h"

namespace roicl::exp {
namespace {

TEST(SettingTest, NamesAndFlags) {
  EXPECT_EQ(AllSettings().size(), 4u);
  EXPECT_EQ(SettingName(Setting::kSuNo), "SuNo");
  EXPECT_EQ(SettingName(Setting::kInCo), "InCo");
  EXPECT_TRUE(IsSufficient(Setting::kSuCo));
  EXPECT_FALSE(IsSufficient(Setting::kInNo));
  EXPECT_TRUE(HasCovariateShift(Setting::kSuCo));
  EXPECT_FALSE(HasCovariateShift(Setting::kSuNo));
}

TEST(DatasetsTest, NamesAndGenerators) {
  EXPECT_EQ(AllDatasets().size(), 3u);
  EXPECT_EQ(DatasetName(DatasetId::kCriteo), "CRITEO-UPLIFT v2");
  synth::SyntheticGenerator criteo = MakeGenerator(DatasetId::kCriteo);
  EXPECT_EQ(criteo.config().num_features, 12);
  synth::SyntheticGenerator meituan = MakeGenerator(DatasetId::kMeituan);
  EXPECT_EQ(meituan.config().num_features, 99);
  synth::SyntheticGenerator alibaba = MakeGenerator(DatasetId::kAlibaba);
  EXPECT_EQ(alibaba.config().num_features, 25);
}

TEST(BuildSplitsTest, SufficientVsInsufficientSizes) {
  synth::SyntheticGenerator generator = MakeGenerator(DatasetId::kCriteo);
  SplitSizes sizes;
  sizes.train_sufficient = 2000;
  sizes.calibration = 500;
  sizes.test = 800;
  DatasetSplits su = BuildSplits(generator, Setting::kSuNo, sizes, 1);
  DatasetSplits in = BuildSplits(generator, Setting::kInNo, sizes, 1);
  EXPECT_EQ(su.train.n(), 2000);
  EXPECT_NEAR(in.train.n(), 300, 3);  // 0.15 subsample
  EXPECT_EQ(su.calibration.n(), 500);
  EXPECT_EQ(su.test.n(), 800);
}

TEST(BuildSplitsTest, ShiftOnlyAffectsCalibAndTest) {
  synth::SyntheticGenerator generator = MakeGenerator(DatasetId::kCriteo);
  SplitSizes sizes;
  sizes.train_sufficient = 4000;
  sizes.calibration = 4000;
  sizes.test = 4000;
  DatasetSplits shifted = BuildSplits(generator, Setting::kSuCo, sizes, 2);

  // Count minority-segment mass: training should follow the unshifted
  // mixture, calibration/test the shifted one.
  auto minority_mass = [&](const RctDataset& d) {
    int count = 0;
    for (int s : d.segment) count += (s >= 2);
    return static_cast<double>(count) / d.n();
  };
  EXPECT_LT(minority_mass(shifted.train), 0.2);
  EXPECT_GT(minority_mass(shifted.calibration), 0.5);
  EXPECT_GT(minority_mass(shifted.test), 0.5);
}

TEST(BuildSplitsTest, CalibAndTestShareDistribution) {
  // Assumption 6: calibration and test mixtures agree.
  synth::SyntheticGenerator generator = MakeGenerator(DatasetId::kCriteo);
  SplitSizes sizes;
  sizes.train_sufficient = 1000;
  sizes.calibration = 8000;
  sizes.test = 8000;
  DatasetSplits splits = BuildSplits(generator, Setting::kInCo, sizes, 3);
  int k = generator.config().num_segments;
  std::vector<double> hc(AsSize(k), 0.0), ht(AsSize(k), 0.0);
  for (int s : splits.calibration.segment) {
    hc[AsSize(s)] += 1.0 / splits.calibration.n();
  }
  for (int s : splits.test.segment) ht[AsSize(s)] += 1.0 / splits.test.n();
  for (int s = 0; s < k; ++s) EXPECT_NEAR(hc[AsSize(s)], ht[AsSize(s)], 0.03);
}

TEST(MethodsTest, Table1HasPaperMethodsInOrderPlusRankingRow) {
  MethodHyperparams hp;
  std::vector<MethodSpec> methods = Table1Methods(hp);
  // The paper's ten rows in paper order, then the ranking-objective
  // extension row (RankNet) appended last so paper tables stay aligned.
  ASSERT_EQ(methods.size(), 11u);
  EXPECT_EQ(methods[0].name, "TPM-SL");
  EXPECT_EQ(methods[2].name, "TPM-CF");
  EXPECT_EQ(methods[7].name, "DR");
  EXPECT_EQ(methods[8].name, "DRP");
  EXPECT_EQ(methods[9].name, "rDRP");
  EXPECT_EQ(methods[10].name, "RankNet");
  // Factories construct models matching their names.
  for (const MethodSpec& spec : methods) {
    std::unique_ptr<uplift::RoiModel> model = spec.factory();
    EXPECT_EQ(model->name(), spec.name);
  }
}

TEST(RunnerTest, RunSettingEvaluatesEveryMethod) {
  MethodHyperparams hp;
  hp.neural_epochs = 4;
  hp.forest_trees = 5;
  hp.causal_forest_trees = 5;
  hp.mc_passes = 8;
  std::vector<MethodSpec> methods = {DrpMethod(hp), RdrpMethod(hp)};
  SplitSizes sizes;
  sizes.train_sufficient = 1500;
  sizes.calibration = 600;
  sizes.test = 800;
  std::vector<OfflineCell> cells =
      RunSetting(DatasetId::kCriteo, Setting::kInCo, methods, sizes, 5);
  ASSERT_EQ(cells.size(), 2u);
  for (const OfflineCell& cell : cells) {
    EXPECT_GT(cell.aucc, 0.2);
    EXPECT_LT(cell.aucc, 1.0);
    EXPECT_GT(cell.seconds, 0.0);
    EXPECT_EQ(cell.setting, Setting::kInCo);
  }
}

TEST(TextTableTest, RendersMarkdown) {
  TextTable table({"Method", "AUCC"});
  table.AddRow({"DRP", TextTable::Num(0.7714)});
  table.AddRow({"rDRP", TextTable::Num(0.7717)});
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| Method | AUCC   |"), std::string::npos);
  EXPECT_NE(rendered.find("0.7714"), std::string::npos);
  EXPECT_NE(rendered.find("rDRP"), std::string::npos);
}

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::Num(0.5), "0.5000");
  EXPECT_EQ(TextTable::Num(1.23456, 2), "1.23");
}

}  // namespace
}  // namespace roicl::exp
