// Tests for the roicl_obs observability module: log-level filtering,
// structured sinks, concurrent metric updates from ThreadPool workers,
// span nesting, and well-formedness (parse round-trip) of the JSON
// metrics snapshot and chrome://tracing export.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "common/thread_pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/service.h"

namespace roicl::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser: enough to round-trip-validate the
// exports without adding a dependency. Rejects trailing garbage.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value;

  bool is_object() const {
    return std::holds_alternative<JsonObject>(value);
  }
  bool is_array() const { return std::holds_alternative<JsonArray>(value); }
  bool is_number() const { return std::holds_alternative<double>(value); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value);
  }
  const JsonObject& object() const { return std::get<JsonObject>(value); }
  const JsonArray& array() const { return std::get<JsonArray>(value); }
  double number() const { return std::get<double>(value); }
  const std::string& string() const {
    return std::get<std::string>(value);
  }
  bool Has(const std::string& key) const {
    return is_object() && object().count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    return object().at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char escape = text_[pos_++];
        switch (escape) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // decoded value not needed for these tests
            *out += '?';
            break;
          }
          default:
            return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character: invalid JSON
      } else {
        *out += c;
      }
    }
    return false;
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      JsonObject object;
      SkipSpace();
      if (Consume('}')) {
        out->value = std::move(object);
        return true;
      }
      for (;;) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        object.emplace(std::move(key), std::move(value));
        if (Consume(',')) continue;
        if (Consume('}')) break;
        return false;
      }
      out->value = std::move(object);
      return true;
    }
    if (c == '[') {
      ++pos_;
      JsonArray array;
      SkipSpace();
      if (Consume(']')) {
        out->value = std::move(array);
        return true;
      }
      for (;;) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        array.push_back(std::move(value));
        if (Consume(',')) continue;
        if (Consume(']')) break;
        return false;
      }
      out->value = std::move(array);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) return false;
      out->value = std::move(s);
      return true;
    }
    if (ParseLiteral("true")) {
      out->value = true;
      return true;
    }
    if (ParseLiteral("false")) {
      out->value = false;
      return true;
    }
    if (ParseLiteral("null")) {
      out->value = nullptr;
      return true;
    }
    // Number.
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out->value = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      return false;
    }
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool ParseJson(std::string_view text, JsonValue* out) {
  return JsonParser(text).Parse(out);
}

// ---------------------------------------------------------------------------
// Logger

/// Sink that captures records for assertions.
class CaptureSink : public LogSink {
 public:
  struct Captured {
    LogLevel level;
    std::string message;
    std::vector<std::pair<std::string, std::string>> fields;
  };

  void Write(const LogRecord& record) override {
    Captured captured;
    captured.level = record.level;
    captured.message = std::string(record.message);
    for (size_t i = 0; i < record.num_fields; ++i) {
      captured.fields.emplace_back(record.fields[i].key,
                                   record.fields[i].value);
    }
    records.push_back(std::move(captured));
  }

  std::vector<Captured> records;
};

TEST(LogLevelTest, ParseAndName) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kOff);  // untouched on failure
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST(LoggerTest, LevelFiltering) {
  Logger logger(/*with_default_sink=*/false);
  auto sink = std::make_unique<CaptureSink>();
  CaptureSink* capture = sink.get();
  logger.AddSink(std::move(sink));

  logger.SetLevel(LogLevel::kWarn);
  logger.Log(LogLevel::kDebug, "d");
  logger.Log(LogLevel::kInfo, "i");
  logger.Log(LogLevel::kWarn, "w");
  logger.Log(LogLevel::kError, "e");
  ASSERT_EQ(capture->records.size(), 2u);
  EXPECT_EQ(capture->records[0].message, "w");
  EXPECT_EQ(capture->records[1].message, "e");

  logger.SetLevel(LogLevel::kDebug);
  logger.Log(LogLevel::kDebug, "d2");
  ASSERT_EQ(capture->records.size(), 3u);

  logger.SetLevel(LogLevel::kOff);
  logger.Log(LogLevel::kError, "never");
  EXPECT_EQ(capture->records.size(), 3u);
}

TEST(LoggerTest, FieldsAreCapturedInOrder) {
  Logger logger(/*with_default_sink=*/false);
  auto sink = std::make_unique<CaptureSink>();
  CaptureSink* capture = sink.get();
  logger.AddSink(std::move(sink));
  logger.SetLevel(LogLevel::kInfo);

  logger.Log(LogLevel::kInfo, "fit done",
             {{"epoch", 3}, {"loss", 0.5}, {"method", "rDRP"}});
  ASSERT_EQ(capture->records.size(), 1u);
  const CaptureSink::Captured& record = capture->records[0];
  ASSERT_EQ(record.fields.size(), 3u);
  EXPECT_EQ(record.fields[0].first, "epoch");
  EXPECT_EQ(record.fields[0].second, "3");
  EXPECT_EQ(record.fields[1].first, "loss");
  EXPECT_EQ(record.fields[1].second, "0.5");
  EXPECT_EQ(record.fields[2].second, "rDRP");
}

TEST(LoggerTest, GlobalLoggerFiltersByLevel) {
  Logger& global = Logger::Global();
  LogLevel saved = global.level();
  auto sinks = global.SwapSinks({});
  auto capture_owner = std::make_unique<CaptureSink>();
  CaptureSink* capture = capture_owner.get();
  global.AddSink(std::move(capture_owner));

  global.SetLevel(LogLevel::kError);
  Info("filtered out");
  Error("kept");
  ASSERT_EQ(capture->records.size(), 1u);
  EXPECT_EQ(capture->records[0].message, "kept");

  global.SetLevel(saved);
  global.SwapSinks(std::move(sinks));
}

TEST(JsonLinesSinkTest, EmitsParseableObjects) {
  std::string path =
      testing::TempDir() + "/obs_test_log_lines.jsonl";
  std::remove(path.c_str());
  {
    Logger logger(/*with_default_sink=*/false);
    logger.SetLevel(LogLevel::kDebug);
    auto sink = std::make_unique<JsonLinesSink>(path);
    ASSERT_TRUE(sink->ok());
    logger.AddSink(std::move(sink));
    logger.Log(LogLevel::kInfo, "with \"quotes\" and\nnewline",
               {{"k", "v w"}, {"n", 2.5}, {"flag", true}});
    logger.Log(LogLevel::kWarn, "second");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    JsonValue value;
    ASSERT_TRUE(ParseJson(line, &value)) << line;
    ASSERT_TRUE(value.is_object());
    EXPECT_TRUE(value.Has("ts"));
    EXPECT_TRUE(value.Has("level"));
    EXPECT_TRUE(value.Has("tid"));
    EXPECT_TRUE(value.Has("msg"));
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, CounterGaugeBasics) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("obs_test.counter");
  counter->Reset();
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);
  EXPECT_EQ(registry.GetCounter("obs_test.counter"), counter)
      << "same name must resolve to the same instrument";

  Gauge* gauge = registry.GetGauge("obs_test.gauge");
  gauge->Set(2.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.5);
  gauge->Set(-1.0);
  EXPECT_DOUBLE_EQ(gauge->value(), -1.0);
}

TEST(MetricsTest, HistogramBucketing) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // <= 1
  histogram.Observe(1.0);    // <= 1 (le semantics)
  histogram.Observe(5.0);    // <= 10
  histogram.Observe(100.0);  // <= 100
  histogram.Observe(1e6);    // overflow
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  std::vector<uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
}

TEST(MetricsTest, ApproxQuantileInterpolatesWithinBuckets) {
  Histogram histogram({10.0, 20.0});
  EXPECT_TRUE(std::isnan(histogram.ApproxQuantile(0.5)));
  for (int i = 0; i < 4; ++i) histogram.Observe(5.0);   // bucket (0, 10]
  for (int i = 0; i < 4; ++i) histogram.Observe(15.0);  // bucket (10, 20]
  // Rank ceil(0.5 * 8) = 4 lands on the last of bucket 0's four
  // observations: 0 + (4 - 0.5) / 4 * 10.
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(0.50), 8.75);
  // Rank 8 is the last of bucket 1's: 10 + (8 - 4 - 0.5) / 4 * 10.
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(0.95), 18.75);
  // q is clamped; q = 0 still targets rank 1.
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(-1.0),
                   histogram.ApproxQuantile(0.0));
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(0.0), 1.25);
  // Observations past the last bound report that bound (an honest
  // floor: the overflow bucket has no upper edge to interpolate to).
  Histogram overflow({1.0});
  overflow.Observe(50.0);
  EXPECT_DOUBLE_EQ(overflow.ApproxQuantile(0.5), 1.0);
}

TEST(MetricsTest, SnapshotJsonCarriesPercentiles) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram* histogram = registry.GetHistogram(
      "obs_test.percentile_histogram", {10.0, 20.0});
  Histogram* empty = registry.GetHistogram(
      "obs_test.percentile_empty_histogram", {1.0});
  histogram->Reset();
  empty->Reset();
  for (int i = 0; i < 4; ++i) histogram->Observe(5.0);
  for (int i = 0; i < 4; ++i) histogram->Observe(15.0);

  JsonValue snapshot;
  ASSERT_TRUE(ParseJson(registry.SnapshotJson(), &snapshot));
  const JsonValue& hist =
      snapshot.At("histograms").At("obs_test.percentile_histogram");
  ASSERT_TRUE(hist.At("p50").is_number());
  EXPECT_DOUBLE_EQ(hist.At("p50").number(), 8.75);
  ASSERT_TRUE(hist.At("p95").is_number());
  EXPECT_DOUBLE_EQ(hist.At("p95").number(), 18.75);
  ASSERT_TRUE(hist.At("p99").is_number());
  // An empty histogram's quantile is NaN, which must degrade to null
  // rather than corrupt the JSON document.
  const JsonValue& empty_hist =
      snapshot.At("histograms").At("obs_test.percentile_empty_histogram");
  EXPECT_TRUE(std::holds_alternative<std::nullptr_t>(
      empty_hist.At("p50").value));
  histogram->Reset();
}

TEST(MetricsTest, ConcurrentUpdatesFromThreadPoolWorkers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("obs_test.concurrent_counter");
  Histogram* histogram = registry.GetHistogram(
      "obs_test.concurrent_histogram", {10.0, 100.0, 1000.0});
  counter->Reset();
  histogram->Reset();

  constexpr int kIterations = 20000;
  ThreadPool pool(4);
  pool.ParallelFor(0, kIterations, [&](int i) {
    counter->Increment();
    histogram->Observe(static_cast<double>(i % 1500));
  });

  EXPECT_EQ(counter->value(), static_cast<uint64_t>(kIterations));
  EXPECT_EQ(histogram->count(), static_cast<uint64_t>(kIterations));
  uint64_t bucket_total = 0;
  for (uint64_t c : histogram->BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, static_cast<uint64_t>(kIterations));
  double expected_sum = 0.0;
  for (int i = 0; i < kIterations; ++i) expected_sum += i % 1500;
  EXPECT_DOUBLE_EQ(histogram->sum(), expected_sum);
}

TEST(MetricsTest, SnapshotJsonRoundTrips) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test.snapshot_counter")->Reset();
  registry.GetCounter("obs_test.snapshot_counter")->Increment(7);
  registry.GetGauge("obs_test.snapshot_gauge")->Set(1.25);
  Histogram* histogram =
      registry.GetHistogram("obs_test.snapshot_histogram", {1.0, 2.0});
  histogram->Reset();
  histogram->Observe(1.5);

  JsonValue snapshot;
  ASSERT_TRUE(ParseJson(registry.SnapshotJson(), &snapshot));
  ASSERT_TRUE(snapshot.is_object());
  ASSERT_TRUE(snapshot.Has("counters"));
  ASSERT_TRUE(snapshot.Has("gauges"));
  ASSERT_TRUE(snapshot.Has("histograms"));

  const JsonValue& counter = snapshot.At("counters")
                                 .At("obs_test.snapshot_counter");
  ASSERT_TRUE(counter.is_number());
  EXPECT_DOUBLE_EQ(counter.number(), 7.0);

  const JsonValue& gauge =
      snapshot.At("gauges").At("obs_test.snapshot_gauge");
  ASSERT_TRUE(gauge.is_number());
  EXPECT_DOUBLE_EQ(gauge.number(), 1.25);

  const JsonValue& hist =
      snapshot.At("histograms").At("obs_test.snapshot_histogram");
  ASSERT_TRUE(hist.is_object());
  EXPECT_DOUBLE_EQ(hist.At("count").number(), 1.0);
  EXPECT_DOUBLE_EQ(hist.At("sum").number(), 1.5);
  ASSERT_TRUE(hist.At("bounds").is_array());
  ASSERT_TRUE(hist.At("counts").is_array());
  EXPECT_EQ(hist.At("counts").array().size(),
            hist.At("bounds").array().size() + 1);
}

TEST(MetricsTest, NonFiniteGaugeStaysParseable) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge("obs_test.inf_gauge")
      ->Set(std::numeric_limits<double>::infinity());
  JsonValue snapshot;
  ASSERT_TRUE(ParseJson(registry.SnapshotJson(), &snapshot));
  EXPECT_TRUE(std::holds_alternative<std::nullptr_t>(
      snapshot.At("gauges").At("obs_test.inf_gauge").value));
  registry.GetGauge("obs_test.inf_gauge")->Reset();
}

// ---------------------------------------------------------------------------
// Trace spans

TEST(TraceTest, SpansAreFreeWhenDisabled) {
  TraceCollector& collector = TraceCollector::Global();
  collector.SetEnabled(false);
  collector.Clear();
  {
    ScopedSpan span("ignored");
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
  }
  EXPECT_EQ(collector.size(), 0u);
}

TEST(TraceTest, NestedSpansRecordDepthAndContainment) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Clear();
  collector.SetEnabled(true);
  {
    ScopedSpan outer("outer");
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
    {
      ScopedSpan inner("inner", "detail text");
      EXPECT_EQ(ScopedSpan::CurrentDepth(), 2);
    }
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
  }
  EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
  collector.SetEnabled(false);

  std::vector<TraceEvent> events = collector.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].detail, "detail text");
  EXPECT_EQ(events[1].name, "outer");
  // Child interval nested within the parent interval.
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
  EXPECT_EQ(events[0].tid, events[1].tid);
  collector.Clear();
}

TEST(TraceTest, ChromeJsonRoundTrips) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Clear();
  collector.SetEnabled(true);
  {
    ScopedSpan train("train");
    for (int epoch = 0; epoch < 3; ++epoch) {
      ScopedSpan span("epoch");
    }
  }
  collector.SetEnabled(false);

  JsonValue trace;
  ASSERT_TRUE(ParseJson(collector.ToChromeJson(), &trace));
  ASSERT_TRUE(trace.is_array());
  ASSERT_EQ(trace.array().size(), 4u);
  int epochs = 0;
  for (const JsonValue& event : trace.array()) {
    ASSERT_TRUE(event.is_object());
    for (const char* key : {"name", "ph", "ts", "dur", "pid", "tid"}) {
      EXPECT_TRUE(event.Has(key)) << "missing " << key;
    }
    EXPECT_EQ(event.At("ph").string(), "X");
    if (event.At("name").string() == "epoch") ++epochs;
  }
  EXPECT_EQ(epochs, 3);

  std::string path = testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(collector.WriteChromeJson(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue from_file;
  EXPECT_TRUE(ParseJson(buffer.str(), &from_file));
  std::remove(path.c_str());
  collector.Clear();
}

TEST(TraceTest, FlowEventsCarryCategoryIdAndBindingPoint) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Clear();
  collector.SetEnabled(false);
  collector.RecordFlowEvent("ignored", 's', 1);
  EXPECT_EQ(collector.size(), 0u) << "flow events are free when disabled";

  collector.SetEnabled(true);
  collector.RecordFlowEvent("serve.request", 's', 42);
  collector.RecordFlowEvent("serve.request", 't', 42);
  collector.RecordFlowEvent("serve.request", 'f', 42);
  collector.SetEnabled(false);

  JsonValue trace;
  ASSERT_TRUE(ParseJson(collector.ToChromeJson(), &trace));
  ASSERT_TRUE(trace.is_array());
  ASSERT_EQ(trace.array().size(), 3u);
  std::string phases;
  for (const JsonValue& event : trace.array()) {
    phases += event.At("ph").string();
    // Chrome binds flow arrows by (cat, id); a missing cat silently
    // detaches every arrow, so pin the exact fields.
    EXPECT_EQ(event.At("cat").string(), "flow");
    EXPECT_DOUBLE_EQ(event.At("id").number(), 42.0);
    EXPECT_FALSE(event.Has("dur")) << "flow events carry no duration";
    if (event.At("ph").string() == "f") {
      EXPECT_EQ(event.At("bp").string(), "e");
    } else {
      EXPECT_FALSE(event.Has("bp"));
    }
  }
  EXPECT_EQ(phases, "stf") << "export must preserve record order";
  collector.Clear();
}

// ---------------------------------------------------------------------------
// Exemplars and Prometheus exposition

TEST(ExemplarTest, MaxKeepingRetentionWithTraceIdTieBreak) {
  Histogram histogram({10.0, 100.0});
  histogram.ObserveWithExemplar(5.0, 11);
  histogram.ObserveWithExemplar(7.0, 3);    // larger value evicts trace 11
  histogram.ObserveWithExemplar(7.0, 9);    // value tie: larger id wins
  histogram.ObserveWithExemplar(250.0, 21);  // lands in the overflow slot
  std::vector<Exemplar> exemplars = histogram.Exemplars();
  ASSERT_EQ(exemplars.size(), 3u);
  ASSERT_TRUE(exemplars[0].valid);
  EXPECT_DOUBLE_EQ(exemplars[0].value, 7.0);
  EXPECT_EQ(exemplars[0].trace_id, 9u);
  EXPECT_FALSE(exemplars[1].valid) << "no observation in (10, 100]";
  ASSERT_TRUE(exemplars[2].valid);
  EXPECT_EQ(exemplars[2].trace_id, 21u);
  EXPECT_EQ(histogram.count(), 4u)
      << "the exemplar path must still count as a plain observation";
  histogram.Reset();
  for (const Exemplar& exemplar : histogram.Exemplars()) {
    EXPECT_FALSE(exemplar.valid);
  }
}

TEST(ExemplarTest, SampledSetIsThreadCountInvariant) {
  // The serving path samples exemplars with a counter RNG keyed on
  // (seed, trace_id) and the histogram retains per-bucket maxima; both
  // are pure functions of the request stream, so replaying the same
  // stream at different parallelism must surface identical exemplar
  // trace IDs (ISSUE: determinism at thread counts {1, 8}).
  constexpr int kRequests = 4096;
  const pipeline::ExemplarSampler sampler{/*seed=*/17, /*rate=*/0.05};
  auto value_of = [](uint64_t trace_id) {
    return static_cast<double>((trace_id * 9973) % 100000) + 0.5;
  };
  std::vector<std::vector<uint64_t>> runs;
  for (int threads : {1, 8}) {
    Histogram histogram(LatencyMicrosBuckets());
    ThreadPool pool(threads);
    pool.ParallelFor(0, kRequests, [&](int i) {
      uint64_t trace_id = static_cast<uint64_t>(i) + 1;
      double value = value_of(trace_id);
      if (sampler.Sample(trace_id)) {
        histogram.ObserveWithExemplar(value, trace_id);
      } else {
        histogram.Observe(value);
      }
    });
    std::vector<uint64_t> ids;
    for (const Exemplar& exemplar : histogram.Exemplars()) {
      ids.push_back(exemplar.valid ? exemplar.trace_id : 0);
    }
    runs.push_back(std::move(ids));
  }
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], runs[1])
      << "exemplar trace IDs must not depend on thread interleaving";
  int valid = 0;
  for (uint64_t id : runs[0]) valid += id != 0 ? 1 : 0;
  EXPECT_GT(valid, 0) << "sampling rate too low to exercise retention";
}

TEST(ExemplarTest, SamplerRateZeroNeverSamples) {
  const pipeline::ExemplarSampler off{/*seed=*/17, /*rate=*/0.0};
  for (uint64_t id = 1; id <= 100; ++id) EXPECT_FALSE(off.Sample(id));
}

TEST(PrometheusTest, TextExpositionCarriesTypesBucketsAndExemplars) {
  MetricsRegistry registry;  // local: keep the global registry pristine
  registry.GetCounter("prom.test-counter")->Increment(3);
  registry.GetGauge("prom.test_gauge")->Set(1.5);
  Histogram* histogram =
      registry.GetHistogram("prom.test_hist", {10.0, 100.0});
  histogram->Observe(5.0);
  histogram->Observe(50.0);
  histogram->ObserveWithExemplar(75.0, 42);

  std::string text = registry.PrometheusText();
  // Names are sanitized ('.' and '-' become '_') and typed.
  EXPECT_NE(text.find("# TYPE prom_test_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("prom_test_counter 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prom_test_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("prom_test_gauge 1.5\n"), std::string::npos);
  // Histogram buckets are cumulative with a +Inf catch-all, and the
  // sampled bucket carries its OpenMetrics exemplar suffix.
  EXPECT_NE(text.find("prom_test_hist_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("prom_test_hist_bucket{le=\"100\"} 3 # {trace_id=\"42\"} 75\n"),
      std::string::npos);
  EXPECT_NE(text.find("prom_test_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("prom_test_hist_sum 130\n"), std::string::npos);
  EXPECT_NE(text.find("prom_test_hist_count 3\n"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

}  // namespace
}  // namespace roicl::obs
