// The paper's key theoretical properties as executable checks:
//   1. DRP unbiasedness: at convergence, sigmoid(s) estimates the ROI
//      (Theorem of Zhou et al. the paper builds on).
//   2. Algorithm 2 stability: the convergence point transfers between
//      equally-distributed calibration and test sets (Assumption 6).
//   3. Eq. 4 coverage: rDRP intervals cover the test-set convergence point
//      at the configured rate, across all three dataset presets.
//   4. Algorithm 1 order: the greedy allocator treats individuals in
//      exactly descending-ROI order.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/stats.h"
#include "core/drp_model.h"
#include "core/greedy.h"
#include "core/rdrp.h"
#include "core/roi_star.h"
#include "exp/datasets.h"
#include "exp/methods.h"
#include "metrics/coverage.h"
#include "synth/synthetic_generator.h"

namespace roicl {
namespace {

// ---- Property 1: DRP unbiasedness at a (near-)constant true ROI. ----

class DrpUnbiasedness : public ::testing::TestWithParam<double> {};

TEST_P(DrpUnbiasedness, MeanPredictionMatchesConstantRoi) {
  double roi = GetParam();
  synth::SyntheticConfig config = synth::CriteoSynthConfig();
  // Pin the ground-truth ROI to a narrow band around `roi`.
  config.roi_lo = roi - 0.02;
  config.roi_hi = roi + 0.02;
  synth::SyntheticGenerator generator(config);
  Rng rng(11);
  RctDataset train = generator.Generate(12000, false, &rng);
  RctDataset test = generator.Generate(4000, false, &rng);

  core::DrpConfig drp_config;
  drp_config.train.epochs = 60;
  drp_config.train.learning_rate = 5e-3;
  drp_config.train.patience = 10;
  core::DrpModel drp(drp_config);
  drp.Fit(train);
  double mean_roi = Mean(drp.PredictRoi(test.x));
  EXPECT_NEAR(mean_roi, roi, 0.10) << "target roi " << roi;
}

INSTANTIATE_TEST_SUITE_P(RoiLevels, DrpUnbiasedness,
                         ::testing::Values(0.25, 0.5, 0.75));

// ---- Property 2: Algorithm 2 transfers across same-distribution sets. --

class RoiStarTransfer : public ::testing::TestWithParam<exp::DatasetId> {};

TEST_P(RoiStarTransfer, CalibAndTestConvergencePointsAgree) {
  synth::SyntheticGenerator generator = exp::MakeGenerator(GetParam());
  Rng rng(13);
  // The ratio estimator tau_r/tau_c has ~0.05 standard error per set at
  // this size; 25k samples + a 0.1 tolerance keep the check meaningful
  // without being flaky.
  RctDataset calib = generator.Generate(25000, true, &rng);
  RctDataset test = generator.Generate(25000, true, &rng);
  double star_calib = core::BinarySearchRoiStar(calib);
  double star_test = core::BinarySearchRoiStar(test);
  EXPECT_NEAR(star_calib, star_test, 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, RoiStarTransfer,
                         ::testing::ValuesIn(exp::AllDatasets()));

// ---- Property 3: Eq. 4 coverage across dataset presets. ----

class RdrpCoverage : public ::testing::TestWithParam<exp::DatasetId> {};

TEST_P(RdrpCoverage, IntervalsCoverTestConvergencePoint) {
  synth::SyntheticGenerator generator = exp::MakeGenerator(GetParam());
  exp::SplitSizes sizes;
  sizes.train_sufficient = 6000;
  sizes.calibration = 2500;
  sizes.test = 4000;
  DatasetSplits splits =
      exp::BuildSplits(generator, exp::Setting::kSuCo, sizes, /*seed=*/17);

  exp::MethodHyperparams hp;
  hp.neural_epochs = 25;
  hp.mc_passes = 20;
  core::RdrpConfig config = exp::MakeRdrpConfig(hp);
  config.clip_to_unit = false;  // raw Algorithm-3 intervals
  core::RdrpModel rdrp(config);
  rdrp.FitWithCalibration(splits.train, splits.calibration);

  double star_test = core::BinarySearchRoiStar(splits.test);
  std::vector<metrics::Interval> intervals =
      rdrp.PredictIntervals(splits.test.x);
  int covered = 0;
  for (const auto& interval : intervals) {
    covered += interval.Contains(star_test);
  }
  double coverage =
      static_cast<double>(covered) / static_cast<double>(intervals.size());
  // alpha = 0.1 minus slack for the calib-vs-test roi* drift.
  EXPECT_GE(coverage, 0.80) << exp::DatasetName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, RdrpCoverage,
                         ::testing::ValuesIn(exp::AllDatasets()));

// ---- Property 4: greedy treats in descending ROI order. ----

TEST(GreedyOrderProperty, SelectionFollowsRoiRanking) {
  Rng rng(19);
  int n = 500;
  std::vector<double> roi(AsSize(n)), cost(AsSize(n));
  for (int i = 0; i < n; ++i) {
    roi[AsSize(i)] = rng.Uniform(0.05, 0.95);
    cost[AsSize(i)] = 1.0;  // uniform costs isolate the ordering property
  }
  core::AllocationResult alloc = core::GreedyAllocate(roi, cost, 100.0);
  ASSERT_EQ(alloc.selected.size(), 100u);
  // Every selected individual has ROI >= every unselected one.
  double min_selected = 1.0;
  for (int i : alloc.selected) min_selected = std::min(min_selected, roi[AsSize(i)]);
  std::vector<char> chosen(AsSize(n), 0);
  for (int i : alloc.selected) chosen[AsSize(i)] = 1;
  for (int i = 0; i < n; ++i) {
    if (!chosen[AsSize(i)]) {
      EXPECT_LE(roi[AsSize(i)], min_selected + 1e-12);
    }
  }
  // And the selection order itself is descending.
  for (size_t k = 1; k < alloc.selected.size(); ++k) {
    EXPECT_GE(roi[AsSize(alloc.selected[k - 1])],
              roi[AsSize(alloc.selected[k])] - 1e-12);
  }
}

}  // namespace
}  // namespace roicl
