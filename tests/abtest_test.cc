#include "abtest/simulator.h"

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "core/drp_model.h"
#include "core/rdrp.h"

namespace roicl::abtest {
namespace {

/// A RoiModel stub that returns a fixed transformation of the true ROI —
/// lets us test the simulator without training networks.
class OracleModel : public uplift::RoiModel {
 public:
  explicit OracleModel(const synth::SyntheticGenerator* generator)
      : generator_(generator) {}
  void Fit(const RctDataset&) override {}
  std::vector<double> PredictRoi(const Matrix& x) const override {
    std::vector<double> roi(AsSize(x.rows()));
    for (int i = 0; i < x.rows(); ++i) {
      roi[AsSize(i)] = generator_->Roi(x.RowPtr(i));
    }
    return roi;
  }
  std::string name() const override { return "oracle"; }

 private:
  const synth::SyntheticGenerator* generator_;
};

/// Anti-oracle: the worst possible ranking.
class AntiOracleModel : public OracleModel {
 public:
  using OracleModel::OracleModel;
  std::vector<double> PredictRoi(const Matrix& x) const override {
    std::vector<double> roi = OracleModel::PredictRoi(x);
    for (double& r : roi) r = -r;
    return roi;
  }
  std::string name() const override { return "anti-oracle"; }
};

TEST(AbTestSimulatorTest, OracleBeatsRandomBeatsAntiOracle) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  OracleModel oracle(&generator);
  AntiOracleModel anti(&generator);
  AbTestConfig config;
  config.population_per_day = 3000;
  config.num_days = 3;
  AbTestResult result =
      RunAbTest(generator, /*shifted_deployment=*/false, anti, oracle,
                config);
  // "rdrp" arm carries the oracle here, "drp" the anti-oracle.
  EXPECT_GT(result.LiftOverRandomPct(result.rdrp_arm), 5.0);
  EXPECT_LT(result.LiftOverRandomPct(result.drp_arm), -5.0);
  EXPECT_EQ(result.rdrp_arm.daily_revenue.size(), 3u);
}

TEST(AbTestSimulatorTest, ArmsShareBudgetAndPopulation) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  OracleModel oracle(&generator);
  AbTestConfig config;
  config.population_per_day = 1000;
  config.num_days = 2;
  AbTestResult result = RunAbTest(generator, false, oracle, oracle, config);
  // Identical models in both arms -> identical revenue.
  EXPECT_DOUBLE_EQ(result.drp_arm.total_revenue,
                   result.rdrp_arm.total_revenue);
}

TEST(AbTestSimulatorTest, DeterministicBySeed) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  OracleModel oracle(&generator);
  AbTestConfig config;
  config.population_per_day = 500;
  config.num_days = 2;
  AbTestResult a = RunAbTest(generator, true, oracle, oracle, config);
  AbTestResult b = RunAbTest(generator, true, oracle, oracle, config);
  EXPECT_DOUBLE_EQ(a.random_arm.total_revenue,
                   b.random_arm.total_revenue);
  EXPECT_DOUBLE_EQ(a.drp_arm.total_revenue, b.drp_arm.total_revenue);
}

TEST(AbTestSimulatorTest, EndToEndWithTrainedModels) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(3);
  RctDataset train = generator.Generate(4000, false, &rng);
  RctDataset calib = generator.Generate(1200, false, &rng);

  core::DrpConfig drp_config;
  drp_config.train.epochs = 15;
  core::DrpModel drp(drp_config);
  drp.Fit(train);

  core::RdrpConfig rdrp_config;
  rdrp_config.drp = drp_config;
  rdrp_config.mc_passes = 15;
  core::RdrpModel rdrp(rdrp_config);
  rdrp.FitWithCalibration(train, calib);

  AbTestConfig config;
  config.population_per_day = 2000;
  config.num_days = 3;
  AbTestResult result = RunAbTest(generator, false, drp, rdrp, config);
  // Learned models should clear the random baseline.
  EXPECT_GT(result.LiftOverRandomPct(result.drp_arm), 0.0);
  EXPECT_GT(result.LiftOverRandomPct(result.rdrp_arm), 0.0);
}

}  // namespace
}  // namespace roicl::abtest
