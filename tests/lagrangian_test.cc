#include "core/lagrangian.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "core/greedy.h"

namespace roicl::core {
namespace {

TEST(LagrangianTest, EverythingFitsAtZeroLambda) {
  LagrangianResult result =
      LagrangianAllocate({1.0, 2.0}, {1.0, 1.0}, /*budget=*/5.0);
  EXPECT_EQ(result.selected.size(), 2u);
  EXPECT_DOUBLE_EQ(result.lambda, 0.0);
  EXPECT_DOUBLE_EQ(result.value, 3.0);
}

TEST(LagrangianTest, RespectsBudget) {
  Rng rng(1);
  int n = 200;
  std::vector<double> values(AsSize(n)), costs(AsSize(n));
  for (int i = 0; i < n; ++i) {
    costs[AsSize(i)] = rng.Uniform(0.1, 2.0);
    values[AsSize(i)] = rng.Uniform(0.0, 1.0) * costs[AsSize(i)];
  }
  double budget = 20.0;
  LagrangianResult result = LagrangianAllocate(values, costs, budget);
  EXPECT_LE(result.spent, budget + 1e-9);
}

TEST(LagrangianTest, UpperBoundDominatesOptimum) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 4 + static_cast<int>(rng.UniformInt(10));
    std::vector<double> values(AsSize(n)), costs(AsSize(n));
    for (int i = 0; i < n; ++i) {
      costs[AsSize(i)] = rng.Uniform(0.2, 2.0);
      values[AsSize(i)] = rng.Uniform(0.05, 0.95) * costs[AsSize(i)];
    }
    double budget = rng.Uniform(0.5, 0.5 * n);
    double optimum = KnapsackBruteForce(values, costs, budget);
    LagrangianResult result = LagrangianAllocate(values, costs, budget);
    EXPECT_GE(result.upper_bound + 1e-9, optimum) << "trial " << trial;
    EXPECT_LE(result.value, optimum + 1e-9) << "trial " << trial;
  }
}

TEST(LagrangianTest, MatchesGreedyQuality) {
  // Both are ratio-driven; the Lagrangian primal (with repair) should be
  // at least as good as skip-greedy on random instances.
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 100;
    std::vector<double> values(AsSize(n)), costs(AsSize(n)), roi(AsSize(n));
    for (int i = 0; i < n; ++i) {
      costs[AsSize(i)] = rng.Uniform(0.1, 1.5);
      roi[AsSize(i)] = rng.Uniform(0.05, 0.95);
      values[AsSize(i)] = roi[AsSize(i)] * costs[AsSize(i)];
    }
    double budget = rng.Uniform(2.0, 20.0);
    LagrangianResult lagrangian = LagrangianAllocate(values, costs, budget);
    AllocationResult greedy =
        GreedyAllocate(roi, costs, budget, /*skip_unaffordable=*/true);
    double greedy_value = SelectionValue(greedy.selected, values);
    EXPECT_GE(lagrangian.value + 1e-9, greedy_value * 0.999)
        << "trial " << trial;
  }
}

TEST(LagrangianTest, TightBudgetSelectsBestRatios) {
  // values/costs ratios: 0.9, 0.5, 0.1 — with room for exactly one unit
  // cost, the best-ratio item wins.
  LagrangianResult result =
      LagrangianAllocate({0.9, 0.5, 0.1}, {1.0, 1.0, 1.0}, 1.0);
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.selected[0], 0);
}

TEST(LagrangianTest, ZeroBudget) {
  LagrangianResult result = LagrangianAllocate({1.0}, {1.0}, 0.0);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_DOUBLE_EQ(result.value, 0.0);
  EXPECT_GE(result.upper_bound, 0.0);
}

TEST(LagrangianTest, RejectsNonPositiveCosts) {
  EXPECT_DEATH(LagrangianAllocate({1.0}, {0.0}, 1.0), "positive");
}

TEST(LagrangianTest, EmptyPopulation) {
  LagrangianResult result = LagrangianAllocate({}, {}, 5.0);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_DOUBLE_EQ(result.spent, 0.0);
  EXPECT_DOUBLE_EQ(result.upper_bound, 0.0);
}

TEST(LagrangianTest, SingleUserPopulation) {
  LagrangianResult fits = LagrangianAllocate({0.5}, {1.0}, 1.0);
  EXPECT_EQ(fits.selected, (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(fits.spent, 1.0);
  LagrangianResult too_costly = LagrangianAllocate({0.5}, {2.0}, 1.0);
  EXPECT_TRUE(too_costly.selected.empty());
}

TEST(LagrangianTest, BudgetExactlyExhaustedBoundary) {
  // Repair admits the row landing exactly on the remaining budget.
  LagrangianResult result =
      LagrangianAllocate({0.9, 0.4, 0.2}, {1.0, 1.0, 1.0}, 3.0);
  EXPECT_EQ(result.selected.size(), 3u);
  EXPECT_DOUBLE_EQ(result.spent, 3.0);
}

TEST(LagrangianTest, DuplicateRatioRepairIsIndexStable) {
  // Regression for the unstable repair sort: 1000 items with identical
  // value/cost ratio and a budget for 250 must repair in exact index
  // order — before the (ratio, index) total order, the picked set
  // depended on std::sort internals.
  std::vector<double> values(1000, 0.5);
  std::vector<double> costs(1000, 1.0);
  LagrangianResult result = LagrangianAllocate(values, costs, 250.0);
  ASSERT_EQ(result.selected.size(), 250u);
  std::vector<int> sorted = result.selected;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 250; ++i) {
    EXPECT_EQ(sorted[AsSize(i)], i);
  }
}

}  // namespace
}  // namespace roicl::core
