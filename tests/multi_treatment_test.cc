#include "core/multi_treatment.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "metrics/cost_curve.h"
#include "synth/multi_treatment.h"

namespace roicl {
namespace {

synth::MultiTreatmentGenerator MakeGenerator() {
  // Arm 1: small coupon. Arm 2: big coupon — costs 1.8x, slightly lower
  // ROI (diminishing returns). The base effect range is shrunk so the
  // scaled arm keeps outcome probabilities valid (see the generator's
  // saturation check).
  synth::SyntheticConfig base = synth::CriteoSynthConfig();
  base.tau_c_lo = 0.05;
  base.tau_c_hi = 0.30;
  return synth::MultiTreatmentGenerator(
      base, {{.cost_scale = 1.0, .roi_shift = 0.0},
             {.cost_scale = 1.8, .roi_shift = -0.08}});
}

TEST(MultiTreatmentGeneratorTest, GeneratesAllArms) {
  synth::MultiTreatmentGenerator generator = MakeGenerator();
  Rng rng(1);
  synth::MultiTreatmentDataset data = generator.Generate(3000, false, &rng);
  EXPECT_EQ(data.num_arms(), 2);
  std::vector<int> counts(3, 0);
  for (int t : data.treatment) {
    ASSERT_GE(t, 0);
    ASSERT_LE(t, 2);
    counts[AsSize(t)]++;
  }
  for (int c : counts) EXPECT_NEAR(c / 3000.0, 1.0 / 3.0, 0.05);
}

TEST(MultiTreatmentGeneratorTest, ArmEffectsScaleAsConfigured) {
  synth::MultiTreatmentGenerator generator = MakeGenerator();
  Rng rng(2);
  synth::MultiTreatmentDataset data = generator.Generate(100, false, &rng);
  for (int i = 0; i < data.n(); ++i) {
    EXPECT_NEAR(data.true_tau_c[1][AsSize(i)], 1.8 * data.true_tau_c[0][AsSize(i)], 1e-12);
    // ROI of arm 2 is shifted down by 0.08 (up to the clamp).
    double roi1 = data.TrueRoi(i, 1);
    double roi2 = data.TrueRoi(i, 2);
    EXPECT_LE(roi2, roi1 + 1e-12);
  }
}

TEST(MultiTreatmentGeneratorTest, BinarySubproblemIsValidRct) {
  synth::MultiTreatmentGenerator generator = MakeGenerator();
  Rng rng(3);
  synth::MultiTreatmentDataset data = generator.Generate(2000, false, &rng);
  for (int arm = 1; arm <= 2; ++arm) {
    RctDataset sub = data.BinarySubproblem(arm);
    sub.Validate();
    EXPECT_GT(sub.NumTreated(), 0);
    EXPECT_GT(sub.NumControl(), 0);
    // Roughly 2/3 of the population lands in each sub-problem.
    EXPECT_NEAR(sub.n() / static_cast<double>(data.n()), 2.0 / 3.0, 0.05);
    // The sub-problem's RCT difference-in-means estimates the arm's
    // average effect.
    double mean_tau_c = 0.0;
    for (int i = 0; i < data.n(); ++i) {
      mean_tau_c += data.true_tau_c[AsSize(arm - 1)][AsSize(i)];
    }
    mean_tau_c /= data.n();
    EXPECT_NEAR(sub.AverageCostLift(), mean_tau_c, 0.08);
  }
}

TEST(MultiTreatmentGeneratorTest, ArmWithZeroTreatedRowsYieldsControlOnlySubproblem) {
  // Hand-built dataset where nobody ever received arm 2: its binary
  // sub-problem must still project cleanly (all-control), leaving the
  // caller to decide whether a scorer can be fit on it.
  synth::MultiTreatmentDataset data;
  const int n = 6;
  data.x = Matrix(n, 1);
  for (int i = 0; i < n; ++i) data.x(i, 0) = i;
  data.treatment = {0, 1, 0, 1, 0, 1};  // arm 2 never assigned
  data.y_revenue.assign(AsSize(n), 1.0);
  data.y_cost.assign(AsSize(n), 0.5);
  data.true_tau_r.assign(2, std::vector<double>(AsSize(n), 0.1));
  data.true_tau_c.assign(2, std::vector<double>(AsSize(n), 0.2));
  ASSERT_EQ(data.num_arms(), 2);

  RctDataset sub = data.BinarySubproblem(2);
  EXPECT_EQ(sub.n(), 3);  // only the control rows survive
  EXPECT_EQ(sub.NumTreated(), 0);
  EXPECT_EQ(sub.NumControl(), 3);

  RctDataset sub1 = data.BinarySubproblem(1);
  EXPECT_EQ(sub1.n(), n);
  EXPECT_EQ(sub1.NumTreated(), 3);
}

TEST(MultiTreatmentGeneratorTest, SingleArmDegeneratesToBinaryRct) {
  // K = 1 is the paper's binary setting: uniform assignment over
  // {control, arm 1} and a sub-problem that keeps every row.
  synth::MultiTreatmentGenerator generator(
      synth::CriteoSynthConfig(), {{.cost_scale = 1.0, .roi_shift = 0.0}});
  ASSERT_EQ(generator.num_arms(), 1);
  Rng rng(7);
  synth::MultiTreatmentDataset data = generator.Generate(3000, false, &rng);
  EXPECT_EQ(data.num_arms(), 1);
  int treated = 0;
  for (int t : data.treatment) {
    ASSERT_GE(t, 0);
    ASSERT_LE(t, 1);
    treated += t;
  }
  EXPECT_NEAR(treated / 3000.0, 0.5, 0.05);

  RctDataset sub = data.BinarySubproblem(1);
  EXPECT_EQ(sub.n(), data.n());
  sub.Validate();
  // Unscaled, unshifted arm: oracle columns match the base mechanism, so
  // every true ROI sits inside the base generator's clamp range.
  for (int i = 0; i < data.n(); ++i) {
    double roi = data.TrueRoi(i, 1);
    EXPECT_GT(roi, 0.0);
    EXPECT_LT(roi, 1.0);
  }
}

TEST(MultiTreatmentDeathTest, TrueRoiChecksNonPositiveCostEffect) {
  synth::MultiTreatmentDataset data;
  data.x = Matrix(1, 1);
  data.x(0, 0) = 0.0;
  data.treatment = {1};
  data.y_revenue = {1.0};
  data.y_cost = {0.5};
  data.true_tau_r.assign(1, {0.1});
  data.true_tau_c.assign(1, {0.0});  // violates Assumption 4
  EXPECT_DEATH(data.TrueRoi(0, 1), "tau_c > 0");
  data.true_tau_c[0][0] = -0.2;
  EXPECT_DEATH(data.TrueRoi(0, 1), "tau_c > 0");
  // Out-of-range arm/sample indices are also CHECKed.
  data.true_tau_c[0][0] = 0.2;
  EXPECT_DEATH(data.TrueRoi(0, 0), "arm");
  EXPECT_DEATH(data.TrueRoi(1, 1), "");
}

TEST(GreedyAllocateMultiTest, OneArmPerUser) {
  // Two arms, three users; arm 2 strictly better ROI for user 0.
  std::vector<std::vector<double>> roi = {{0.5, 0.9, 0.2},
                                          {0.8, 0.1, 0.3}};
  std::vector<std::vector<double>> costs = {{1.0, 1.0, 1.0},
                                            {1.0, 1.0, 1.0}};
  core::MultiAllocationResult result =
      core::GreedyAllocateMulti(roi, costs, 2.0);
  EXPECT_EQ(result.assignment[0], 2);  // best pair overall is (1, arm1)=0.9
  EXPECT_EQ(result.assignment[1], 1);
  EXPECT_EQ(result.assignment[2], -1);  // budget exhausted
  EXPECT_DOUBLE_EQ(result.spent, 2.0);
}

TEST(GreedyAllocateMultiTest, SkipsUnaffordablePairs) {
  std::vector<std::vector<double>> roi = {{0.9, 0.5}};
  std::vector<std::vector<double>> costs = {{10.0, 1.0}};
  core::MultiAllocationResult result =
      core::GreedyAllocateMulti(roi, costs, 2.0);
  EXPECT_EQ(result.assignment[0], -1);
  EXPECT_EQ(result.assignment[1], 1);
}

TEST(GreedyAllocateMultiTest, ZeroBudgetTreatsNobody) {
  std::vector<std::vector<double>> roi = {{0.9}};
  std::vector<std::vector<double>> costs = {{1.0}};
  core::MultiAllocationResult result =
      core::GreedyAllocateMulti(roi, costs, 0.0);
  EXPECT_EQ(result.assignment[0], -1);
  EXPECT_DOUBLE_EQ(result.spent, 0.0);
}

TEST(DivideAndConquerRdrpTest, EndToEndBeatsRandomAllocation) {
  synth::MultiTreatmentGenerator generator = MakeGenerator();
  Rng rng(4);
  synth::MultiTreatmentDataset train = generator.Generate(6000, false, &rng);
  synth::MultiTreatmentDataset calib = generator.Generate(2400, false, &rng);
  synth::MultiTreatmentDataset test = generator.Generate(3000, false, &rng);

  core::RdrpConfig config;
  config.drp.train.epochs = 12;
  config.mc_passes = 10;
  core::DivideAndConquerRdrp model(config);
  model.FitWithCalibration(train, calib);
  EXPECT_EQ(model.num_arms(), 2);

  std::vector<std::vector<double>> scores = model.PredictRoiPerArm(test.x);
  ASSERT_EQ(scores.size(), 2u);
  for (const auto& arm_scores : scores) {
    ASSERT_EQ(static_cast<int>(arm_scores.size()), test.n());
    for (double s : arm_scores) EXPECT_TRUE(std::isfinite(s));
  }

  // Allocate a budget using true per-arm costs; compare realized revenue
  // against a random (user, arm) ranking under the same budget.
  std::vector<std::vector<double>> costs = {test.true_tau_c[0],
                                            test.true_tau_c[1]};
  double all_in = 0.0;
  for (double c : costs[0]) all_in += c;
  double budget = 0.15 * all_in;

  auto realize = [&](const core::MultiAllocationResult& alloc) {
    double revenue = 0.0;
    for (int i = 0; i < test.n(); ++i) {
      int arm = alloc.assignment[AsSize(i)];
      if (arm > 0) revenue += test.true_tau_r[AsSize(arm - 1)][AsSize(i)];
    }
    return revenue;
  };

  core::MultiAllocationResult model_alloc =
      core::GreedyAllocateMulti(scores, costs, budget);

  Rng noise(5);
  std::vector<std::vector<double>> random_scores(
      2, std::vector<double>(AsSize(test.n())));
  for (auto& arm_scores : random_scores) {
    for (double& s : arm_scores) s = noise.Uniform();
  }
  core::MultiAllocationResult random_alloc =
      core::GreedyAllocateMulti(random_scores, costs, budget);

  EXPECT_GT(realize(model_alloc), realize(random_alloc));
}

TEST(DivideAndConquerRdrpTest, PerArmModelsAreCalibrated) {
  synth::MultiTreatmentGenerator generator = MakeGenerator();
  Rng rng(6);
  synth::MultiTreatmentDataset train = generator.Generate(4000, false, &rng);
  synth::MultiTreatmentDataset calib = generator.Generate(2000, false, &rng);
  core::RdrpConfig config;
  config.drp.train.epochs = 8;
  config.mc_passes = 8;
  core::DivideAndConquerRdrp model(config);
  model.FitWithCalibration(train, calib);
  for (int arm = 1; arm <= 2; ++arm) {
    EXPECT_TRUE(model.arm_model(arm).calibrated());
    EXPECT_GT(model.arm_model(arm).roi_star(), 0.0);
    EXPECT_LT(model.arm_model(arm).roi_star(), 1.0);
  }
  // Arm 2 (shifted-down ROI, scaled-up cost) should have a lower
  // convergence point than arm 1.
  EXPECT_LT(model.arm_model(2).roi_star(), model.arm_model(1).roi_star());
}

}  // namespace
}  // namespace roicl
