#include "core/greedy.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"

namespace roicl::core {
namespace {

TEST(GreedyAllocateTest, PicksHighestRoiFirst) {
  std::vector<double> roi = {0.1, 0.9, 0.5};
  std::vector<double> cost = {1.0, 1.0, 1.0};
  AllocationResult result = GreedyAllocate(roi, cost, 2.0);
  ASSERT_EQ(result.selected.size(), 2u);
  EXPECT_EQ(result.selected[0], 1);
  EXPECT_EQ(result.selected[1], 2);
  EXPECT_DOUBLE_EQ(result.spent, 2.0);
}

TEST(GreedyAllocateTest, StopVariantHaltsAtFirstOverflow) {
  std::vector<double> roi = {0.9, 0.8, 0.7};
  std::vector<double> cost = {1.0, 5.0, 1.0};
  AllocationResult result =
      GreedyAllocate(roi, cost, 2.0, /*skip_unaffordable=*/false);
  // Paper semantics: item 1 does not fit, allocation stops there.
  EXPECT_EQ(result.selected, (std::vector<int>{0}));
}

TEST(GreedyAllocateTest, SkipVariantContinuesPastOverflow) {
  std::vector<double> roi = {0.9, 0.8, 0.7};
  std::vector<double> cost = {1.0, 5.0, 1.0};
  AllocationResult result =
      GreedyAllocate(roi, cost, 2.0, /*skip_unaffordable=*/true);
  EXPECT_EQ(result.selected, (std::vector<int>{0, 2}));
}

TEST(GreedyAllocateTest, ZeroBudgetSelectsNothingCostly) {
  std::vector<double> roi = {0.5, 0.6};
  std::vector<double> cost = {1.0, 2.0};
  AllocationResult result = GreedyAllocate(roi, cost, 0.0);
  EXPECT_TRUE(result.selected.empty());
}

TEST(GreedyAllocateTest, TiesBreakByIndexDeterministically) {
  std::vector<double> roi = {0.5, 0.5, 0.5};
  std::vector<double> cost = {1.0, 1.0, 1.0};
  AllocationResult result = GreedyAllocate(roi, cost, 2.0);
  EXPECT_EQ(result.selected, (std::vector<int>{0, 1}));
}

TEST(GreedyAllocateTest, BudgetExactlyExhaustedBoundary) {
  // spent + cost <= budget must admit the row that lands exactly on the
  // budget — for both the stop and the skip variant.
  std::vector<double> roi = {0.9, 0.8, 0.7};
  std::vector<double> cost = {1.5, 0.5, 1.0};
  for (bool skip : {false, true}) {
    AllocationResult result = GreedyAllocate(roi, cost, 3.0, skip);
    EXPECT_EQ(result.selected, (std::vector<int>{0, 1, 2})) << skip;
    EXPECT_DOUBLE_EQ(result.spent, 3.0);
  }
}

TEST(GreedyAllocateTest, SingleUserPopulation) {
  for (bool skip : {false, true}) {
    AllocationResult fits = GreedyAllocate({0.5}, {1.0}, 1.0, skip);
    EXPECT_EQ(fits.selected, (std::vector<int>{0}));
    EXPECT_DOUBLE_EQ(fits.spent, 1.0);
    AllocationResult too_costly = GreedyAllocate({0.5}, {2.0}, 1.0, skip);
    EXPECT_TRUE(too_costly.selected.empty());
    EXPECT_DOUBLE_EQ(too_costly.spent, 0.0);
  }
}

TEST(GreedyAllocateTest, EmptyPopulation) {
  for (bool skip : {false, true}) {
    AllocationResult result = GreedyAllocate({}, {}, 5.0, skip);
    EXPECT_TRUE(result.selected.empty());
    EXPECT_DOUBLE_EQ(result.spent, 0.0);
  }
}

TEST(GreedyAllocateTest, ThousandDuplicateKeysRankByIndex) {
  // Regression for the documented (roi desc, index asc) total order:
  // 1000 identical ROI keys must allocate in exact index order under
  // both variants, independent of sort internals.
  std::vector<double> roi(1000, 0.5);
  std::vector<double> cost(1000, 1.0);
  for (bool skip : {false, true}) {
    AllocationResult result = GreedyAllocate(roi, cost, 250.0, skip);
    ASSERT_EQ(result.selected.size(), 250u);
    for (int i = 0; i < 250; ++i) {
      EXPECT_EQ(result.selected[AsSize(i)], i);
    }
  }
}

TEST(KnapsackBruteForceTest, KnownOptimum) {
  std::vector<double> values = {6.0, 10.0, 12.0};
  std::vector<double> costs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(KnapsackBruteForce(values, costs, 5.0), 22.0);
  EXPECT_DOUBLE_EQ(KnapsackBruteForce(values, costs, 6.0), 28.0);
}

TEST(SelectionValueTest, Sums) {
  EXPECT_DOUBLE_EQ(SelectionValue({0, 2}, {1.0, 2.0, 3.0}), 4.0);
}

// Property test of the paper's approximation bound:
// greedy >= OPT - max_i value_i when items are ranked by value/cost.
class GreedyApproximation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyApproximation, WithinAdditiveBoundOfOptimum) {
  Rng rng(GetParam());
  int n = 4 + static_cast<int>(rng.UniformInt(10));
  std::vector<double> values(AsSize(n)), costs(AsSize(n)), roi(AsSize(n));
  for (int i = 0; i < n; ++i) {
    costs[AsSize(i)] = rng.Uniform(0.2, 2.0);
    roi[AsSize(i)] = rng.Uniform(0.05, 0.95);  // value density (ROI)
    values[AsSize(i)] = roi[AsSize(i)] * costs[AsSize(i)];     // tau_r = roi * tau_c
  }
  double budget = rng.Uniform(0.5, 0.6 * n);
  double optimum = KnapsackBruteForce(values, costs, budget);

  AllocationResult greedy =
      GreedyAllocate(roi, costs, budget, /*skip_unaffordable=*/true);
  double greedy_value = SelectionValue(greedy.selected, values);
  double max_value = *std::max_element(values.begin(), values.end());
  EXPECT_GE(greedy_value + max_value + 1e-9, optimum)
      << "n=" << n << " budget=" << budget;
  EXPECT_LE(greedy.spent, budget + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GreedyApproximation,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace roicl::core
