#include "core/roi_star.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "synth/synthetic_generator.h"

namespace roicl::core {
namespace {

/// RCT sample whose population ROI is `roi` by construction.
RctDataset MakeRct(int n, double roi, double tau_c, uint64_t seed) {
  Rng rng(seed);
  RctDataset d;
  d.x = Matrix(n, 1);
  for (int i = 0; i < n; ++i) {
    int t = rng.Bernoulli(0.5) ? 1 : 0;
    d.treatment.push_back(t);
    d.y_cost.push_back(rng.Bernoulli(0.2 + t * tau_c) ? 1.0 : 0.0);
    d.y_revenue.push_back(rng.Bernoulli(0.05 + t * roi * tau_c) ? 1.0
                                                                : 0.0);
  }
  return d;
}

// Algorithm 2 must converge to the analytic ratio tau_r / tau_c for any
// (roi, tau_c) combination and any epsilon.
class RoiStarParam
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(RoiStarParam, BinarySearchMatchesAnalytic) {
  auto [roi, tau_c, epsilon] = GetParam();
  RctDataset d = MakeRct(40000, roi, tau_c, /*seed=*/7);
  double analytic =
      AnalyticRoiStar(d.treatment, d.y_revenue, d.y_cost);
  double searched =
      BinarySearchRoiStar(d.treatment, d.y_revenue, d.y_cost, epsilon);
  // Algorithm 2 has two stopping rules sharing one epsilon: the interval
  // width (|roi_r - roi_l| <= eps) and the derivative magnitude
  // (|L'| < eps). The latter fires when |sigma(s) - roi*| < eps / tau_c,
  // so the achievable accuracy is eps * (1 + 1 / tau_hat_c).
  double tau_c_hat = RctDataset::DiffInMeans(d.treatment, d.y_cost);
  EXPECT_NEAR(searched, analytic, epsilon * (1.0 + 1.0 / tau_c_hat) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoiStarParam,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.8),
                       ::testing::Values(0.2, 0.4),
                       ::testing::Values(1e-3, 1e-5)));

/// Noise-free RCT with exact arm means: 1000 treated (cost mean 0.75,
/// revenue mean 0.40) and 1000 control (cost mean 0.25, revenue mean
/// 0.05), so tau_c = 0.5 and tau_r = 0.35 hold *exactly* — not in
/// expectation — and the closed-form convergence point is
/// roi* = tau_r / tau_c = 0.7 to the last bit.
RctDataset MakeGoldenRct() {
  RctDataset d;
  const int kPerArm = 1000;
  d.x = Matrix(2 * kPerArm, 1);
  for (int arm = 1; arm >= 0; --arm) {
    int cost_ones = arm == 1 ? 750 : 250;
    int revenue_ones = arm == 1 ? 400 : 50;
    for (int i = 0; i < kPerArm; ++i) {
      d.treatment.push_back(arm);
      d.y_cost.push_back(i < cost_ones ? 1.0 : 0.0);
      d.y_revenue.push_back(i < revenue_ones ? 1.0 : 0.0);
    }
  }
  return d;
}

// Golden regression for Algorithm 2: on the exact fixture the search must
// land on the known closed form within the epsilon-derived tolerance AND
// within the bisection iteration bound. A change to the search (step
// rule, stopping conditions, loss derivative) that shifts either the
// value or the work done fails here first.
TEST(RoiStarGolden, ConvergesToClosedFormWithinIterationBound) {
  RctDataset d = MakeGoldenRct();
  ASSERT_DOUBLE_EQ(AnalyticRoiStar(d.treatment, d.y_revenue, d.y_cost),
                   0.7);

  for (double epsilon : {1e-3, 1e-5, 1e-7}) {
    double searched =
        BinarySearchRoiStar(d.treatment, d.y_revenue, d.y_cost, epsilon);
    // Two stopping rules share epsilon; the derivative rule dominates the
    // achievable accuracy at eps * (1 + 1 / tau_c) (see RoiStarParam).
    double tolerance = epsilon * (1.0 + 1.0 / 0.5) + 1e-12;
    EXPECT_NEAR(searched, 0.7, tolerance) << "epsilon=" << epsilon;

    // Bisection halves [0, 1] once per iteration, so it needs at most
    // ceil(log2(1 / eps)) iterations to reach width eps, plus one for
    // the final derivative evaluation. The iteration gauge is set by
    // every search, making the bound observable without new plumbing.
    double iterations = obs::MetricsRegistry::Global()
                            .GetGauge("roi_star.iterations")
                            ->value();
    double bound = std::ceil(std::log2(1.0 / epsilon)) + 1.0;
    EXPECT_GT(iterations, 0.0) << "epsilon=" << epsilon;
    EXPECT_LE(iterations, bound) << "epsilon=" << epsilon;
  }
}

// The golden value must not drift across repeated searches (the search
// reads no global state, so two runs are bitwise equal).
TEST(RoiStarGolden, RepeatedSearchesBitwiseEqual) {
  RctDataset d = MakeGoldenRct();
  double first = BinarySearchRoiStar(d, 1e-5);
  double second = BinarySearchRoiStar(d, 1e-5);
  EXPECT_EQ(first, second);
}

TEST(RoiStarTest, RecoversDesignRoi) {
  RctDataset d = MakeRct(300000, 0.6, 0.3, 11);
  EXPECT_NEAR(BinarySearchRoiStar(d), 0.6, 0.03);
}

TEST(RoiStarTest, DatasetOverloadMatchesVectorOverload) {
  RctDataset d = MakeRct(5000, 0.4, 0.3, 13);
  EXPECT_DOUBLE_EQ(BinarySearchRoiStar(d),
                   BinarySearchRoiStar(d.treatment, d.y_revenue, d.y_cost));
}

TEST(RoiStarTest, SyntheticGeneratorConsistency) {
  // The convergence point over a synthetic population approximates
  // E[tau_r] / E[tau_c] (a cost-weighted ROI).
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(17);
  RctDataset d = generator.Generate(100000, false, &rng);
  double sum_r = 0.0, sum_c = 0.0;
  for (int i = 0; i < d.n(); ++i) {
    sum_r += d.true_tau_r[AsSize(i)];
    sum_c += d.true_tau_c[AsSize(i)];
  }
  EXPECT_NEAR(BinarySearchRoiStar(d), sum_r / sum_c, 0.05);
}

TEST(BinnedRoiStarTest, FallsBackToGlobalForTinyBins) {
  RctDataset d = MakeRct(40, 0.5, 0.3, 19);
  std::vector<double> scores(40);
  Rng rng(23);
  for (double& s : scores) s = rng.Uniform();
  // 20 bins of 2 samples: every bin lacks arm counts -> all global.
  std::vector<double> binned = BinnedRoiStar(
      scores, d.treatment, d.y_revenue, d.y_cost, /*num_bins=*/20);
  double global = BinarySearchRoiStar(d);
  for (double v : binned) EXPECT_DOUBLE_EQ(v, global);
}

TEST(BinnedRoiStarTest, DetectsBinwiseRoiDifference) {
  // Construct data where low scores have ROI 0.2 and high scores ROI 0.7.
  Rng rng(29);
  RctDataset d;
  d.x = Matrix(20000, 1);
  std::vector<double> scores(20000);
  for (int i = 0; i < 20000; ++i) {
    bool high = i >= 10000;
    scores[AsSize(i)] = high ? 0.9 : 0.1;
    double roi = high ? 0.7 : 0.2;
    int t = rng.Bernoulli(0.5) ? 1 : 0;
    d.treatment.push_back(t);
    d.y_cost.push_back(rng.Bernoulli(0.2 + t * 0.3) ? 1.0 : 0.0);
    d.y_revenue.push_back(rng.Bernoulli(0.05 + t * roi * 0.3) ? 1.0 : 0.0);
  }
  std::vector<double> binned = BinnedRoiStar(
      scores, d.treatment, d.y_revenue, d.y_cost, /*num_bins=*/2);
  // Low-score samples get the low-bin roi*, high-score the high-bin one.
  double low_star = binned[0];
  double high_star = binned[19999];
  EXPECT_NEAR(low_star, 0.2, 0.08);
  EXPECT_NEAR(high_star, 0.7, 0.08);
  EXPECT_GT(high_star, low_star + 0.2);
}

TEST(AnalyticRoiStarTest, ClampsToUnitInterval) {
  // Revenue lift exceeding cost lift would give ROI > 1; clamp per
  // Assumption 3.
  std::vector<int> t = {1, 1, 0, 0};
  std::vector<double> yr = {1.0, 1.0, 0.0, 0.0};
  std::vector<double> yc = {1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(AnalyticRoiStar(t, yr, yc), 1.0);
}

}  // namespace
}  // namespace roicl::core
