#include "linalg/solve.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"

namespace roicl {
namespace {

TEST(CholeskyTest, DecomposesSpdMatrix) {
  Matrix a = {{4, 2}, {2, 3}};
  Matrix l;
  ASSERT_TRUE(CholeskyDecompose(a, &l).ok());
  // Verify L * L^T == A.
  Matrix reconstructed = Matmul(l, l.Transposed());
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_NEAR(reconstructed(r, c), a(r, c), 1e-12);
    }
  }
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a = {{1, 2}, {2, 1}};  // indefinite
  Matrix l;
  EXPECT_FALSE(CholeskyDecompose(a, &l).ok());
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  Matrix l;
  EXPECT_FALSE(CholeskyDecompose(a, &l).ok());
}

TEST(CholeskySolveTest, SolvesKnownSystem) {
  Matrix a = {{4, 2}, {2, 3}};
  // x = (1, 2) -> b = (8, 8).
  StatusOr<std::vector<double>> x = CholeskySolve(a, {8.0, 8.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-10);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-10);
}

TEST(CholeskySolveTest, DimensionMismatch) {
  Matrix a = Matrix::Identity(3);
  EXPECT_FALSE(CholeskySolve(a, {1.0, 2.0}).ok());
}

TEST(SolveRidgeTest, RecoversLinearFunction) {
  Rng rng(5);
  int n = 500, d = 4;
  Matrix x(n, d);
  std::vector<double> y(AsSize(n));
  std::vector<double> true_w = {1.0, -2.0, 0.5, 3.0};
  double true_b = 0.7;
  for (int r = 0; r < n; ++r) {
    double acc = true_b;
    for (int c = 0; c < d; ++c) {
      x(r, c) = rng.Normal();
      acc += x(r, c) * true_w[AsSize(c)];
    }
    y[AsSize(r)] = acc + rng.Normal(0.0, 0.01);
  }
  StatusOr<std::vector<double>> w = SolveRidge(x, y, 1e-6);
  ASSERT_TRUE(w.ok());
  for (int c = 0; c < d; ++c) EXPECT_NEAR(w.value()[AsSize(c)], true_w[AsSize(c)], 0.02);
  EXPECT_NEAR(w.value()[AsSize(d)], true_b, 0.02);
}

TEST(SolveRidgeTest, RegularizationShrinksWeights) {
  Rng rng(6);
  int n = 100;
  Matrix x(n, 2);
  std::vector<double> y(AsSize(n));
  for (int r = 0; r < n; ++r) {
    x(r, 0) = rng.Normal();
    x(r, 1) = rng.Normal();
    y[AsSize(r)] = 2.0 * x(r, 0) - x(r, 1);
  }
  double small = std::fabs(SolveRidge(x, y, 0.01).value()[0]);
  double large = std::fabs(SolveRidge(x, y, 1000.0).value()[0]);
  EXPECT_LT(large, small);
}

TEST(SolveRidgeTest, HandlesRankDeficientDesign) {
  // Two identical columns: only solvable thanks to regularization.
  Matrix x = {{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  StatusOr<std::vector<double>> w = SolveRidge(x, {2, 4, 6, 8}, 1e-3);
  ASSERT_TRUE(w.ok());
  // Symmetric solution: both columns get the same weight.
  EXPECT_NEAR(w.value()[0], w.value()[1], 1e-6);
}

TEST(SolveRidgeTest, RejectsBadInput) {
  Matrix x(2, 2);
  EXPECT_FALSE(SolveRidge(x, {1.0}, 1.0).ok());
  EXPECT_FALSE(SolveRidge(x, {1.0, 2.0}, -1.0).ok());
  EXPECT_FALSE(SolveRidge(Matrix(), {}, 1.0).ok());
}

}  // namespace
}  // namespace roicl
