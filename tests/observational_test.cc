// Tests for the observational-data (non-RCT) extension: confounded
// generation, propensity estimation, and IPW-DRP.

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/stats.h"
#include "core/drp_loss.h"
#include "core/drp_model.h"
#include "core/ipw_drp.h"
#include "metrics/cost_curve.h"
#include "synth/synthetic_generator.h"
#include "uplift/propensity.h"

namespace roicl {
namespace {

synth::SyntheticConfig ConfoundedConfig() {
  synth::SyntheticConfig config = synth::CriteoSynthConfig();
  config.confounded_treatment = true;
  config.propensity_lo = 0.15;
  config.propensity_hi = 0.85;
  return config;
}

TEST(ConfoundedGeneratorTest, PropensityVariesWithCovariates) {
  synth::SyntheticGenerator generator(ConfoundedConfig());
  Rng rng(1);
  RctDataset data = generator.Generate(2000, false, &rng);
  RunningStats stats;
  for (int i = 0; i < data.n(); ++i) {
    double e = generator.Propensity(data.x.RowPtr(i));
    EXPECT_GE(e, 0.15);
    EXPECT_LE(e, 0.85);
    stats.Add(e);
  }
  EXPECT_GT(stats.stddev(), 0.05) << "propensity should be heterogeneous";
}

TEST(ConfoundedGeneratorTest, RctConfigHasConstantPropensity) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(2);
  RctDataset data = generator.Generate(100, false, &rng);
  for (int i = 0; i < data.n(); ++i) {
    EXPECT_DOUBLE_EQ(generator.Propensity(data.x.RowPtr(i)), 0.5);
  }
}

TEST(ConfoundedGeneratorTest, TreatmentRateTracksPropensity) {
  synth::SyntheticGenerator generator(ConfoundedConfig());
  Rng rng(3);
  RctDataset data = generator.Generate(40000, false, &rng);
  // Bucket by true propensity; realized treatment rate must track it.
  double low_sum = 0.0, high_sum = 0.0;
  int low_n = 0, high_n = 0;
  for (int i = 0; i < data.n(); ++i) {
    double e = generator.Propensity(data.x.RowPtr(i));
    if (e < 0.4) {
      low_sum += data.treatment[AsSize(i)];
      ++low_n;
    } else if (e > 0.6) {
      high_sum += data.treatment[AsSize(i)];
      ++high_n;
    }
  }
  ASSERT_GT(low_n, 100);
  ASSERT_GT(high_n, 100);
  EXPECT_LT(low_sum / low_n, 0.45);
  EXPECT_GT(high_sum / high_n, 0.55);
}

TEST(PropensityModelTest, RecoversTruePropensity) {
  synth::SyntheticGenerator generator(ConfoundedConfig());
  Rng rng(4);
  RctDataset data = generator.Generate(12000, false, &rng);

  uplift::PropensityConfig config;
  config.hidden = {16};
  config.train.epochs = 40;
  config.train.learning_rate = 5e-3;
  uplift::PropensityModel model(config);
  model.Fit(data.x, data.treatment);

  std::vector<double> predicted = model.Predict(data.x);
  std::vector<double> truth(AsSize(data.n()));
  for (int i = 0; i < data.n(); ++i) {
    truth[AsSize(i)] = generator.Propensity(data.x.RowPtr(i));
  }
  EXPECT_GT(PearsonCorrelation(predicted, truth), 0.8);
}

TEST(PropensityModelTest, PredictionsAreClipped) {
  uplift::PropensityConfig config;
  config.train.epochs = 5;
  config.clip_lo = 0.2;
  config.clip_hi = 0.8;
  uplift::PropensityModel model(config);
  Rng rng(5);
  Matrix x(500, 2);
  std::vector<int> t(500);
  for (int i = 0; i < 500; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    t[AsSize(i)] = x(i, 0) > 0 ? 1 : 0;  // perfectly separable
  }
  model.Fit(x, t);
  for (double e : model.Predict(x)) {
    EXPECT_GE(e, 0.2);
    EXPECT_LE(e, 0.8);
  }
}

TEST(PropensityModelTest, InverseWeightsMatchDefinition) {
  uplift::PropensityConfig config;
  config.train.epochs = 5;
  uplift::PropensityModel model(config);
  Rng rng(6);
  Matrix x(200, 1);
  std::vector<int> t(200);
  for (int i = 0; i < 200; ++i) {
    x(i, 0) = rng.Normal();
    t[AsSize(i)] = rng.Bernoulli(0.5) ? 1 : 0;
  }
  model.Fit(x, t);
  std::vector<double> e = model.Predict(x);
  int n1 = 0;
  for (int ti : t) n1 += (ti == 1);
  double p1 = n1 / 200.0;
  std::vector<double> stabilized = model.InverseWeights(x, t);
  std::vector<double> raw = model.InverseWeights(x, t, /*stabilized=*/false);
  for (int i = 0; i < 200; ++i) {
    double expected_raw = t[AsSize(i)] == 1 ? 1.0 / e[AsSize(i)] : 1.0 / (1.0 - e[AsSize(i)]);
    EXPECT_NEAR(raw[AsSize(i)], expected_raw, 1e-12);
    double expected_stab =
        t[AsSize(i)] == 1 ? p1 / e[AsSize(i)] : (1.0 - p1) / (1.0 - e[AsSize(i)]);
    EXPECT_NEAR(stabilized[AsSize(i)], expected_stab, 1e-12);
  }
}

TEST(IpwDrpTest, BeatsPlainDrpOnConfoundedData) {
  // Averaged over data draws: confounding biases DRP's globally-normalized
  // group means; stabilized IPW re-weighting corrects it. The oracle rank
  // correlation is the yardstick (AUCC is itself biased on confounded
  // evaluation data).
  synth::SyntheticGenerator generator(ConfoundedConfig());
  double plain_total = 0.0, ipw_total = 0.0;
  const std::vector<uint64_t> seeds = {7, 8, 9};
  for (uint64_t seed : seeds) {
    Rng rng(seed);
    RctDataset train = generator.Generate(12000, false, &rng);
    RctDataset test = generator.Generate(6000, false, &rng);

    core::DrpConfig drp_config;
    drp_config.train.epochs = 60;
    drp_config.train.learning_rate = 5e-3;
    drp_config.train.patience = 10;
    drp_config.train.seed = seed;
    drp_config.seed = seed + 1;

    core::DrpModel plain(drp_config);
    plain.Fit(train);

    core::IpwDrpConfig ipw_config;
    ipw_config.drp = drp_config;
    ipw_config.propensity.hidden = {16};
    ipw_config.propensity.train.epochs = 40;
    ipw_config.propensity.train.learning_rate = 5e-3;
    core::IpwDrpModel ipw(ipw_config);
    ipw.Fit(train);

    std::vector<double> truth(AsSize(test.n()));
    for (int i = 0; i < test.n(); ++i) truth[AsSize(i)] = test.TrueRoi(i);
    plain_total += SpearmanCorrelation(plain.PredictRoi(test.x), truth);
    ipw_total += SpearmanCorrelation(ipw.PredictRoi(test.x), truth);
  }
  double plain_corr = plain_total / static_cast<double>(seeds.size());
  double ipw_corr = ipw_total / static_cast<double>(seeds.size());
  EXPECT_GT(ipw_corr, plain_corr)
      << "plain=" << plain_corr << " ipw=" << ipw_corr;
  EXPECT_GT(ipw_corr, 0.1);
}

TEST(IpwDrpTest, McDropoutWorksThroughWrapper) {
  synth::SyntheticGenerator generator(ConfoundedConfig());
  Rng rng(8);
  RctDataset train = generator.Generate(3000, false, &rng);
  core::IpwDrpConfig config;
  config.drp.train.epochs = 5;
  config.propensity.train.epochs = 5;
  core::IpwDrpModel model(config);
  model.Fit(train);
  core::McDropoutStats stats = model.PredictMcRoi(train.x, 10, 3);
  EXPECT_GT(Mean(stats.stddev), 0.0);
  EXPECT_EQ(model.name(), "IPW-DRP");
}

TEST(WeightedDrpLossTest, UniformWeightsMatchUnweighted) {
  std::vector<int> t = {1, 0, 1, 0};
  std::vector<double> yr = {1, 0, 0, 1};
  std::vector<double> yc = {1, 1, 0, 0};
  std::vector<double> w(4, 3.7);  // any constant weight
  core::DrpLoss unweighted(&t, &yr, &yc);
  core::DrpLoss weighted(&t, &yr, &yc, &w);
  Matrix preds = {{0.3}, {-0.2}, {1.0}, {0.5}};
  Matrix g1, g2;
  double l1 = unweighted.Compute(preds, {0, 1, 2, 3}, &g1);
  double l2 = weighted.Compute(preds, {0, 1, 2, 3}, &g2);
  EXPECT_NEAR(l1, l2, 1e-12);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(g1(i, 0), g2(i, 0), 1e-12);
}

TEST(WeightedDrpLossTest, WeightedGradientMatchesFiniteDifference) {
  Rng rng(9);
  int n = 32;
  std::vector<int> t(AsSize(n));
  std::vector<double> yr(AsSize(n)), yc(AsSize(n)), w(AsSize(n));
  for (int i = 0; i < n; ++i) {
    t[AsSize(i)] = rng.Bernoulli(0.5) ? 1 : 0;
    yr[AsSize(i)] = rng.Bernoulli(0.3) ? 1.0 : 0.0;
    yc[AsSize(i)] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    w[AsSize(i)] = rng.Uniform(0.5, 3.0);
  }
  core::DrpLoss loss(&t, &yr, &yc, &w);
  Matrix preds(n, 1);
  std::vector<int> index(AsSize(n));
  for (int i = 0; i < n; ++i) {
    preds(i, 0) = rng.Normal();
    index[AsSize(i)] = i;
  }
  Matrix grad;
  loss.Compute(preds, index, &grad);
  const double h = 1e-6;
  for (int i = 0; i < n; i += 4) {
    Matrix plus = preds, minus = preds;
    plus(i, 0) += h;
    minus(i, 0) -= h;
    Matrix unused;
    double numeric = (loss.Compute(plus, index, &unused) -
                      loss.Compute(minus, index, &unused)) /
                     (2 * h);
    EXPECT_NEAR(grad(i, 0), numeric, 1e-6);
  }
}

}  // namespace
}  // namespace roicl
