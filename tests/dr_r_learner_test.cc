#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "uplift/meta_learners.h"

namespace roicl::uplift {
namespace {

/// y = x0 + t * (1 + 2 x1) + noise (tau(x) = 1 + 2 x1, linear).
void MakeData(int n, uint64_t seed, double propensity, Matrix* x,
              std::vector<int>* t, std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  t->resize(AsSize(n));
  y->resize(AsSize(n));
  for (int i = 0; i < n; ++i) {
    (*x)(i, 0) = rng.Normal();
    (*x)(i, 1) = rng.Normal();
    (*t)[AsSize(i)] = rng.Bernoulli(propensity) ? 1 : 0;
    (*y)[AsSize(i)] = (*x)(i, 0) + (*t)[AsSize(i)] * (1.0 + 2.0 * (*x)(i, 1)) +
              rng.Normal(0.0, 0.2);
  }
}

double CateMse(const CateModel& model, const Matrix& x) {
  std::vector<double> tau = model.PredictCate(x);
  double mse = 0.0;
  for (int i = 0; i < x.rows(); ++i) {
    double truth = 1.0 + 2.0 * x(i, 1);
    mse += (tau[AsSize(i)] - truth) * (tau[AsSize(i)] - truth);
  }
  return mse / x.rows();
}

TEST(DrLearnerTest, RecoversLinearEffect) {
  Matrix x;
  std::vector<int> t;
  std::vector<double> y;
  MakeData(4000, 1, 0.5, &x, &t, &y);
  DrLearner learner(MakeRidgeFactory(1e-4));
  learner.Fit(x, t, y);
  EXPECT_LT(CateMse(learner, x), 0.05);
}

TEST(DrLearnerTest, HandlesUnbalancedArms) {
  Matrix x;
  std::vector<int> t;
  std::vector<double> y;
  MakeData(6000, 2, 0.2, &x, &t, &y);  // 20% treated
  DrLearner learner(MakeRidgeFactory(1e-4));
  learner.Fit(x, t, y);
  EXPECT_LT(CateMse(learner, x), 0.10);
}

TEST(RLearnerTest, RecoversLinearEffect) {
  Matrix x;
  std::vector<int> t;
  std::vector<double> y;
  MakeData(4000, 3, 0.5, &x, &t, &y);
  RLearner learner(MakeRidgeFactory(1e-4));
  learner.Fit(x, t, y);
  EXPECT_LT(CateMse(learner, x), 0.05);
}

TEST(RLearnerTest, HandlesUnbalancedArms) {
  Matrix x;
  std::vector<int> t;
  std::vector<double> y;
  MakeData(6000, 4, 0.3, &x, &t, &y);
  RLearner learner(MakeRidgeFactory(1e-4));
  learner.Fit(x, t, y);
  EXPECT_LT(CateMse(learner, x), 0.10);
}

TEST(DrRLearnerTest, AgreeWithEachOtherOnAverageEffect) {
  Matrix x;
  std::vector<int> t;
  std::vector<double> y;
  MakeData(5000, 5, 0.5, &x, &t, &y);
  DrLearner dr(MakeRidgeFactory(1e-4));
  RLearner r(MakeRidgeFactory(1e-4));
  dr.Fit(x, t, y);
  r.Fit(x, t, y);
  // E[tau] = 1 for this design.
  EXPECT_NEAR(Mean(dr.PredictCate(x)), 1.0, 0.1);
  EXPECT_NEAR(Mean(r.PredictCate(x)), 1.0, 0.1);
}

TEST(DrRLearnerTest, GuardBeforeFit) {
  DrLearner dr(MakeRidgeFactory());
  RLearner r(MakeRidgeFactory());
  Matrix x(1, 1);
  EXPECT_DEATH(dr.PredictCate(x), "before Fit");
  EXPECT_DEATH(r.PredictCate(x), "before Fit");
}

}  // namespace
}  // namespace roicl::uplift
