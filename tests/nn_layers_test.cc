#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "nn/activation.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/mlp.h"

namespace roicl::nn {
namespace {

/// Central-difference gradient check for a whole Mlp against a scalar loss
/// L = sum of outputs. Verifies both parameter grads and input grads.
void CheckGradients(Mlp* net, const Matrix& input, double tol = 1e-5) {
  Rng rng(0);
  Matrix out = net->Forward(input, Mode::kTrain, &rng);
  Matrix grad_out(out.rows(), out.cols(), 1.0);  // dL/dout = 1
  net->ZeroGrads();
  Matrix grad_in = net->Backward(grad_out);

  auto loss_at = [&]() {
    Matrix o = net->Forward(input, Mode::kInfer, nullptr);
    double total = 0.0;
    for (double v : o.data()) total += v;
    return total;
  };

  const double h = 1e-6;
  // Parameter gradients.
  std::vector<Matrix*> params = net->Params();
  std::vector<Matrix*> grads = net->Grads();
  for (size_t p = 0; p < params.size(); ++p) {
    for (size_t k = 0; k < params[p]->size(); k += 7) {  // sample entries
      double original = params[p]->data()[k];
      params[p]->data()[k] = original + h;
      double plus = loss_at();
      params[p]->data()[k] = original - h;
      double minus = loss_at();
      params[p]->data()[k] = original;
      double numeric = (plus - minus) / (2 * h);
      EXPECT_NEAR(grads[p]->data()[k], numeric, tol)
          << "param " << p << " entry " << k;
    }
  }
  // Input gradients.
  Matrix perturbed = input;
  for (size_t k = 0; k < perturbed.size(); k += 5) {
    double original = perturbed.data()[k];
    perturbed.data()[k] = original + h;
    Matrix o_plus = net->Forward(perturbed, Mode::kInfer, nullptr);
    perturbed.data()[k] = original - h;
    Matrix o_minus = net->Forward(perturbed, Mode::kInfer, nullptr);
    perturbed.data()[k] = original;
    double plus = 0.0, minus = 0.0;
    for (double v : o_plus.data()) plus += v;
    for (double v : o_minus.data()) minus += v;
    EXPECT_NEAR(grad_in.data()[k], (plus - minus) / (2 * h), tol)
        << "input entry " << k;
  }
}

TEST(DenseTest, ForwardIsAffine) {
  Rng rng(1);
  Dense dense(2, 2, Init::kZero, nullptr);
  // Manually set W and b.
  std::vector<Matrix*> params = dense.Params();
  (*params[0])(0, 0) = 1.0;
  (*params[0])(0, 1) = 2.0;
  (*params[0])(1, 0) = 3.0;
  (*params[0])(1, 1) = 4.0;
  (*params[1])(0, 0) = 0.5;
  (*params[1])(0, 1) = -0.5;
  Matrix input = {{1.0, 1.0}};
  Matrix out = dense.Forward(input, Mode::kInfer, nullptr);
  EXPECT_DOUBLE_EQ(out(0, 0), 4.5);
  EXPECT_DOUBLE_EQ(out(0, 1), 5.5);
}

TEST(DenseTest, XavierInitBounded) {
  Rng rng(2);
  Dense dense(10, 20, Init::kXavier, &rng);
  double bound = std::sqrt(6.0 / 30.0);
  for (double w : dense.weights().data()) {
    EXPECT_GE(w, -bound);
    EXPECT_LE(w, bound);
  }
  for (double b : dense.bias().data()) EXPECT_EQ(b, 0.0);
}

TEST(DenseTest, CloneIsDeepCopy) {
  Rng rng(3);
  Dense dense(3, 2, Init::kHe, &rng);
  std::unique_ptr<Layer> clone = dense.Clone();
  Matrix input(1, 3, 1.0);
  Matrix a = dense.Forward(input, Mode::kInfer, nullptr);
  Matrix b = clone->Forward(input, Mode::kInfer, nullptr);
  EXPECT_DOUBLE_EQ(a(0, 0), b(0, 0));
  // Mutating the original must not affect the clone.
  (*dense.Params()[0])(0, 0) += 10.0;
  Matrix c = clone->Forward(input, Mode::kInfer, nullptr);
  EXPECT_DOUBLE_EQ(b(0, 0), c(0, 0));
}

TEST(ActivationTest, ReluForward) {
  Activation relu(ActivationKind::kRelu);
  Matrix input = {{-1.0, 0.0, 2.0}};
  Matrix out = relu.Forward(input, Mode::kInfer, nullptr);
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 2), 2.0);
}

TEST(ActivationTest, EluForward) {
  Activation elu(ActivationKind::kElu);
  Matrix input = {{-1.0, 1.0}};
  Matrix out = elu.Forward(input, Mode::kInfer, nullptr);
  EXPECT_NEAR(out(0, 0), std::expm1(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(out(0, 1), 1.0);
}

TEST(ActivationTest, SigmoidAndTanhForward) {
  Activation sigmoid(ActivationKind::kSigmoid);
  Activation tanh_act(ActivationKind::kTanh);
  Matrix input = {{0.7}};
  EXPECT_NEAR(sigmoid.Forward(input, Mode::kInfer, nullptr)(0, 0),
              Sigmoid(0.7), 1e-12);
  EXPECT_NEAR(tanh_act.Forward(input, Mode::kInfer, nullptr)(0, 0),
              std::tanh(0.7), 1e-12);
}

TEST(DropoutTest, IdentityAtInference) {
  Dropout dropout(0.5);
  Matrix input = {{1.0, 2.0, 3.0}};
  Matrix out = dropout.Forward(input, Mode::kInfer, nullptr);
  for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(out(0, c), input(0, c));
}

TEST(DropoutTest, TrainModeZeroesAndRescales) {
  Rng rng(4);
  Dropout dropout(0.5);
  Matrix input(1, 10000, 1.0);
  Matrix out = dropout.Forward(input, Mode::kTrain, &rng);
  int zeros = 0;
  double sum = 0.0;
  for (double v : out.data()) {
    if (v == 0.0) {
      ++zeros;
    } else {
      EXPECT_DOUBLE_EQ(v, 2.0);  // inverted dropout scaling 1/(1-0.5)
    }
    sum += v;
  }
  EXPECT_NEAR(zeros / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);  // expectation preserved
}

TEST(DropoutTest, McSampleModeIsStochastic) {
  Rng rng(5);
  Dropout dropout(0.3);
  Matrix input(1, 100, 1.0);
  Matrix a = dropout.Forward(input, Mode::kMcSample, &rng);
  Matrix b = dropout.Forward(input, Mode::kMcSample, &rng);
  int diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff += a.data()[i] != b.data()[i];
  EXPECT_GT(diff, 10);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(6);
  Dropout dropout(0.5);
  Matrix input(1, 100, 3.0);
  Matrix out = dropout.Forward(input, Mode::kTrain, &rng);
  Matrix grad_out(1, 100, 1.0);
  Matrix grad_in = dropout.Backward(grad_out);
  for (int c = 0; c < 100; ++c) {
    if (out(0, c) == 0.0) {
      EXPECT_DOUBLE_EQ(grad_in(0, c), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(grad_in(0, c), 2.0);
    }
  }
}

TEST(GradientCheckTest, DenseOnly) {
  Rng rng(7);
  Mlp net;
  net.Add(std::make_unique<Dense>(3, 2, Init::kXavier, &rng));
  Matrix input = {{0.5, -1.0, 2.0}, {1.0, 0.0, -0.5}};
  CheckGradients(&net, input);
}

class MlpGradientCheck : public ::testing::TestWithParam<ActivationKind> {};

TEST_P(MlpGradientCheck, TwoLayerWithActivation) {
  Rng rng(8);
  Mlp net = Mlp::MakeMlp(4, {8, 5}, 2, GetParam(), /*dropout_rate=*/0.0,
                         &rng);
  Matrix input(3, 4);
  Rng data_rng(9);
  for (double& v : input.data()) v = data_rng.Normal();
  CheckGradients(&net, input, 2e-5);
}

INSTANTIATE_TEST_SUITE_P(Activations, MlpGradientCheck,
                         ::testing::Values(ActivationKind::kRelu,
                                           ActivationKind::kElu,
                                           ActivationKind::kSigmoid,
                                           ActivationKind::kTanh));

}  // namespace
}  // namespace roicl::nn
