#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/karm_allocate.h"
#include "campaign/karm_source.h"
#include "campaign/karm_streaming.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "core/greedy.h"

/// \file
/// Acceptance mechanism for the K-arm campaign allocator: the streaming
/// sharded-frontier path must be *bitwise identical* to the in-memory
/// K·n-pair reference scan (same selection order, same floating-point
/// global and per-arm spends) across shard counts and chunk sizes — the
/// empirical validation of the collapse lemma in karm_allocate.h — and
/// the Lagrangian dual mode must produce a sound optimality-gap
/// certificate that closes to exactly 0.0 on a provably-optimal case.

namespace roicl::campaign {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

KArmStreamingResult MustAllocate(KArmRowSource* source,
                                 const KArmBudgets& budgets,
                                 const KArmStreamingOptions& options) {
  StatusOr<KArmStreamingResult> result =
      StreamingKArmAllocate(source, budgets, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : KArmStreamingResult{};
}

/// Bitwise equivalence: identical encoded pair sequence and identical
/// floating-point spends (EXPECT_EQ on doubles is exact equality).
void ExpectBitwiseEqual(const KArmStreamingResult& streaming,
                        const KArmAllocationResult& reference) {
  ASSERT_EQ(streaming.selected_pairs.size(),
            reference.selection_order.size());
  for (size_t i = 0; i < reference.selection_order.size(); ++i) {
    EXPECT_EQ(streaming.selected_pairs[i], reference.selection_order[i])
        << "position " << i;
  }
  EXPECT_EQ(streaming.spent, reference.spent);
  ASSERT_EQ(streaming.arm_spent.size(), reference.arm_spent.size());
  for (size_t k = 0; k < reference.arm_spent.size(); ++k) {
    EXPECT_EQ(streaming.arm_spent[k], reference.arm_spent[k]) << "arm " << k;
  }
  EXPECT_EQ(streaming.value, reference.value);
}

/// Random K-arm instance with deliberately duplicated ROI keys (12-value
/// grid) so the documented (roi, arm, user) total order is what the
/// equivalence actually exercises.
void MakeInstance(uint64_t seed, int n, int num_arms,
                  std::vector<std::vector<double>>* roi,
                  std::vector<std::vector<double>>* cost) {
  Rng rng(seed);
  roi->assign(AsSize(num_arms), std::vector<double>(AsSize(n)));
  cost->assign(AsSize(num_arms), std::vector<double>(AsSize(n)));
  for (int k = 0; k < num_arms; ++k) {
    for (int i = 0; i < n; ++i) {
      (*roi)[AsSize(k)][AsSize(i)] =
          0.05 + 0.075 * static_cast<double>(rng.UniformInt(12));
      (*cost)[AsSize(k)][AsSize(i)] = rng.Uniform(0.2, 2.0);
    }
  }
}

// ---------------------------------------------------------------------
// CampaignSmoke.*: the build-matrix smoke subset (check_build_matrix.sh
// runs exactly this suite in every compiler/profile config).
// ---------------------------------------------------------------------

TEST(CampaignSmoke, StreamingMatchesReferenceOnFixedInstance) {
  // Duplicate ROI keys across arms AND users: rank order is decided by
  // the (arm asc, user asc) tie-break everywhere.
  std::vector<std::vector<double>> roi = {{0.5, 0.9, 0.5, 0.3},
                                          {0.5, 0.9, 0.7, 0.1},
                                          {0.2, 0.5, 0.5, 0.9}};
  std::vector<std::vector<double>> cost = {{1.0, 0.5, 1.5, 2.0},
                                           {0.5, 1.0, 0.3, 0.7},
                                           {0.8, 0.6, 1.1, 0.4}};
  KArmBudgets budgets;
  budgets.global = 2.0;
  budgets.per_arm = {1.5, 1.0, 1.0};
  KArmAllocationResult reference = KArmGreedyReference(roi, cost, budgets);
  KArmStreamingOptions options;
  options.num_shards = 2;
  VectorKArmRowSource source(roi, cost, /*chunk_rows=*/2);
  KArmStreamingResult streaming = MustAllocate(&source, budgets, options);
  ExpectBitwiseEqual(streaming, reference);
}

TEST(CampaignSmoke, DualModeCertificateIsSound) {
  std::vector<std::vector<double>> roi;
  std::vector<std::vector<double>> cost;
  MakeInstance(7, 48, 3, &roi, &cost);
  KArmBudgets budgets;
  budgets.global = 10.0;
  budgets.per_arm = {4.0, 4.0, 4.0};
  KArmDualResult dual = KArmDualAllocate(roi, cost, budgets);
  EXPECT_LE(dual.primal.spent, budgets.global);
  for (int k = 0; k < 3; ++k) {
    EXPECT_LE(dual.primal.arm_spent[AsSize(k)], budgets.per_arm[AsSize(k)]);
  }
  EXPECT_GE(dual.dual_gap, -1e-9);
  EXPECT_LE(dual.primal_value, dual.dual_bound + 1e-9);
}

// ---------------------------------------------------------------------
// Property battery: bitwise equivalence across shards/chunks/instances,
// under the asserted memory cap.
// ---------------------------------------------------------------------

class CampaignEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CampaignEquivalence, BitwiseMatchesReference) {
  Rng rng(GetParam() * 7919 + 1);
  int n = 1 + static_cast<int>(rng.UniformInt(150));
  int num_arms = 1 + static_cast<int>(rng.UniformInt(5));
  std::vector<std::vector<double>> roi;
  std::vector<std::vector<double>> cost;
  MakeInstance(GetParam(), n, num_arms, &roi, &cost);
  KArmBudgets budgets;
  budgets.global = rng.Uniform(0.0, 0.4 * static_cast<double>(n) + 1.0);
  budgets.per_arm.assign(AsSize(num_arms), kInf);
  // Half the instances get binding per-arm budgets so arm-overflow stops
  // are exercised as heavily as global stops.
  if (GetParam() % 2 == 0) {
    for (int k = 0; k < num_arms; ++k) {
      budgets.per_arm[AsSize(k)] =
          rng.Uniform(0.0, 0.2 * static_cast<double>(n) + 0.5);
    }
  }
  KArmAllocationResult reference = KArmGreedyReference(roi, cost, budgets);
  for (int shards : {1, 2, 8}) {
    for (int chunk_rows : {1, 7, 64}) {
      KArmStreamingOptions options;
      options.num_shards = shards;
      VectorKArmRowSource source(roi, cost, chunk_rows);
      KArmStreamingResult streaming =
          MustAllocate(&source, budgets, options);
      ExpectBitwiseEqual(streaming, reference);
      EXPECT_LE(streaming.peak_memory_bytes, options.memory_cap_bytes)
          << "shards=" << shards << " chunk_rows=" << chunk_rows;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CampaignEquivalence,
                         ::testing::Range<uint64_t>(1, 41));

TEST(CampaignEquivalence, SyntheticSourceMatchesMaterializedVectors) {
  const int64_t n = 20000;
  const int num_arms = 4;
  const uint64_t seed = 20240819;
  std::vector<std::vector<double>> roi(AsSize(num_arms),
                                       std::vector<double>(AsSize64(n)));
  std::vector<std::vector<double>> cost(AsSize(num_arms),
                                        std::vector<double>(AsSize64(n)));
  for (int k = 0; k < num_arms; ++k) {
    for (int64_t i = 0; i < n; ++i) {
      // PairAt takes the 1-based arm id, matching the streamed chunks.
      SyntheticKArmRowSource::PairAt(seed, i, k + 1,
                                     &roi[AsSize(k)][AsSize64(i)],
                                     &cost[AsSize(k)][AsSize64(i)]);
    }
  }
  double total = 0.0;
  for (const std::vector<double>& arm : cost) {
    for (double c : arm) total += c;
  }
  KArmBudgets budgets;
  budgets.global = 0.01 * total;
  budgets.per_arm = {kInf, 0.004 * total, kInf, 0.002 * total};
  KArmAllocationResult reference = KArmGreedyReference(roi, cost, budgets);
  KArmStreamingOptions options;
  options.num_shards = 8;
  options.memory_cap_bytes = size_t{32} << 20;
  SyntheticKArmRowSource source(n, num_arms, seed, /*chunk_rows=*/1024);
  KArmStreamingResult streaming = MustAllocate(&source, budgets, options);
  ExpectBitwiseEqual(streaming, reference);
  EXPECT_EQ(streaming.users_streamed, n);
  EXPECT_LE(streaming.peak_memory_bytes, options.memory_cap_bytes);
}

TEST(CampaignEquivalence, ParallelShardsMatchSequential) {
  std::vector<std::vector<double>> roi;
  std::vector<std::vector<double>> cost;
  MakeInstance(1234, 500, 3, &roi, &cost);
  KArmBudgets budgets;
  budgets.global = 40.0;
  budgets.per_arm = {20.0, 15.0, kInf};
  KArmStreamingOptions sequential;
  sequential.num_shards = 8;
  VectorKArmRowSource source_a(roi, cost, /*chunk_rows=*/64);
  KArmStreamingResult a = MustAllocate(&source_a, budgets, sequential);
  KArmStreamingOptions parallel = sequential;
  parallel.parallel_shards = true;
  VectorKArmRowSource source_b(roi, cost, /*chunk_rows=*/64);
  KArmStreamingResult b = MustAllocate(&source_b, budgets, parallel);
  EXPECT_EQ(a.selected_pairs, b.selected_pairs);
  EXPECT_EQ(a.spent, b.spent);
  EXPECT_EQ(a.arm_spent, b.arm_spent);
}

TEST(CampaignEquivalence, SingleArmReducesToBinaryGreedy) {
  // K = 1 must degenerate to the binary Algorithm-1 stop scan: same
  // users in the same order, same spend.
  std::vector<std::vector<double>> roi;
  std::vector<std::vector<double>> cost;
  MakeInstance(55, 120, 1, &roi, &cost);
  KArmBudgets budgets;
  budgets.global = 12.0;
  budgets.per_arm = {kInf};
  KArmAllocationResult karm = KArmGreedyReference(roi, cost, budgets);
  core::AllocationResult binary = core::GreedyAllocate(
      roi[0], cost[0], budgets.global, /*skip_unaffordable=*/false);
  ASSERT_EQ(karm.selection_order.size(), binary.selected.size());
  for (size_t i = 0; i < binary.selected.size(); ++i) {
    EXPECT_EQ(karm.selection_order[i],
              static_cast<int64_t>(binary.selected[i]));
  }
  EXPECT_EQ(karm.spent, binary.spent);
}

// ---------------------------------------------------------------------
// Dual mode: exact-zero-gap certificate and soundness battery.
// ---------------------------------------------------------------------

TEST(CampaignDual, GapIsExactlyZeroOnSeededAmpleBudgetCase) {
  // Per-user equal costs across arms make best-value == best-roi arm;
  // ample budgets keep every multiplier at zero. The dual bound and the
  // repaired primal then accumulate identical terms in identical
  // (ascending-user) order, so the certificate closes to EXACTLY 0.0 —
  // not merely within epsilon — and the allocation equals greedy's.
  Rng rng(20240819);
  const int n = 200;
  const int num_arms = 3;
  std::vector<std::vector<double>> roi(AsSize(num_arms),
                                       std::vector<double>(AsSize(n)));
  std::vector<std::vector<double>> cost(AsSize(num_arms),
                                        std::vector<double>(AsSize(n)));
  for (int i = 0; i < n; ++i) {
    double c = rng.Uniform(0.2, 2.0);
    for (int k = 0; k < num_arms; ++k) {
      roi[AsSize(k)][AsSize(i)] = rng.Uniform(0.1, 0.9);
      cost[AsSize(k)][AsSize(i)] = c;
    }
  }
  KArmBudgets budgets;
  double total = 0.0;
  for (const std::vector<double>& arm : cost) {
    for (double c : arm) total += c;
  }
  budgets.global = total + 10.0;  // ample: every user affordable
  budgets.per_arm = {kInf, kInf, kInf};

  KArmDualResult dual = KArmDualAllocate(roi, cost, budgets);
  EXPECT_EQ(dual.dual_gap, 0.0);
  EXPECT_EQ(dual.primal_value, dual.dual_bound);

  KArmAllocationResult greedy = KArmGreedyReference(roi, cost, budgets);
  EXPECT_EQ(dual.primal.assignment, greedy.assignment);
  EXPECT_EQ(dual.primal.spent, greedy.spent);
}

class CampaignDualSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CampaignDualSoundness, FeasibleAndBoundedByCertificate) {
  Rng rng(GetParam() * 104729 + 5);
  int n = 1 + static_cast<int>(rng.UniformInt(200));
  int num_arms = 1 + static_cast<int>(rng.UniformInt(4));
  std::vector<std::vector<double>> roi;
  std::vector<std::vector<double>> cost;
  MakeInstance(GetParam() + 1000, n, num_arms, &roi, &cost);
  KArmBudgets budgets;
  budgets.global = rng.Uniform(0.0, 0.3 * static_cast<double>(n) + 1.0);
  budgets.per_arm.assign(AsSize(num_arms), kInf);
  if (GetParam() % 2 == 0) {
    for (int k = 0; k < num_arms; ++k) {
      budgets.per_arm[AsSize(k)] =
          rng.Uniform(0.0, 0.2 * static_cast<double>(n) + 0.5);
    }
  }
  KArmDualResult dual = KArmDualAllocate(roi, cost, budgets);
  // Hard feasibility after repair: no budget exceeded, no epsilon.
  EXPECT_LE(dual.primal.spent, budgets.global);
  for (int k = 0; k < num_arms; ++k) {
    EXPECT_LE(dual.primal.arm_spent[AsSize(k)], budgets.per_arm[AsSize(k)]);
  }
  // At most one arm per user.
  for (int v : dual.primal.assignment) {
    EXPECT_GE(v, -1);
    EXPECT_LE(v, num_arms);
  }
  // The certificate bounds the repaired primal AND the greedy reference.
  EXPECT_GE(dual.dual_gap, -1e-9);
  EXPECT_LE(dual.primal_value, dual.dual_bound + 1e-9);
  KArmAllocationResult reference = KArmGreedyReference(roi, cost, budgets);
  double reference_value = 0.0;
  for (int64_t index : reference.selection_order) {
    const size_t a = AsSize64(index / n);
    const size_t u = AsSize64(index % n);
    reference_value += roi[a][u] * cost[a][u];
  }
  EXPECT_LE(reference_value, dual.dual_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CampaignDualSoundness,
                         ::testing::Range<uint64_t>(1, 31));

// ---------------------------------------------------------------------
// Input validation and memory-cap behavior.
// ---------------------------------------------------------------------

TEST(CampaignValidation, StreamingRejectsBadBudgetsAndScores) {
  std::vector<std::vector<double>> roi = {{0.5, 0.4}};
  std::vector<std::vector<double>> cost = {{1.0, 1.0}};
  KArmStreamingOptions options;
  {
    KArmBudgets budgets;  // per_arm size mismatch (empty)
    budgets.global = 1.0;
    VectorKArmRowSource source(roi, cost, 2);
    EXPECT_FALSE(StreamingKArmAllocate(&source, budgets, options).ok());
  }
  {
    KArmBudgets budgets;
    budgets.global = std::numeric_limits<double>::quiet_NaN();
    budgets.per_arm = {kInf};
    VectorKArmRowSource source(roi, cost, 2);
    EXPECT_FALSE(StreamingKArmAllocate(&source, budgets, options).ok());
  }
  {
    std::vector<std::vector<double>> bad_roi = {
        {0.5, std::numeric_limits<double>::quiet_NaN()}};
    KArmBudgets budgets;
    budgets.global = 1.0;
    budgets.per_arm = {kInf};
    VectorKArmRowSource source(bad_roi, cost, 2);
    StatusOr<KArmStreamingResult> result =
        StreamingKArmAllocate(&source, budgets, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CampaignValidation, TinyMemoryCapFailsLoudly) {
  std::vector<std::vector<double>> roi;
  std::vector<std::vector<double>> cost;
  MakeInstance(3, 64, 2, &roi, &cost);
  KArmBudgets budgets;
  budgets.global = 1000.0;
  budgets.per_arm = {kInf, kInf};
  KArmStreamingOptions options;
  options.memory_cap_bytes = 64;  // cannot hold even one chunk buffer
  VectorKArmRowSource source(roi, cost, /*chunk_rows=*/16);
  StatusOr<KArmStreamingResult> result =
      StreamingKArmAllocate(&source, budgets, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CampaignValidationDeathTest, ReferenceChecksRaggedInputs) {
  std::vector<std::vector<double>> roi = {{0.5, 0.4}, {0.3}};  // ragged
  std::vector<std::vector<double>> cost = {{1.0, 1.0}, {1.0}};
  KArmBudgets budgets;
  budgets.global = 1.0;
  budgets.per_arm = {kInf, kInf};
  EXPECT_DEATH(KArmGreedyReference(roi, cost, budgets), "");
}

}  // namespace
}  // namespace roicl::campaign
