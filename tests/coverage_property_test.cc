// Property test for the conformal coverage guarantee (Eq. 4 of the
// paper): over repeated draws of the calibration set, the rDRP intervals
// contain the true deployment roi* with probability at least 1 - alpha.
// Runs the full train → calibrate → predict pipeline — through the
// batched, ThreadPool-parallel engine — across 20 independent seeds on
// the SuNo and SuCo settings and checks the empirical coverage against
// the nominal level with a binomial-noise margin.

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/rdrp.h"
#include "core/roi_star.h"
#include "exp/datasets.h"
#include "exp/setting.h"
#include "metrics/cost_curve.h"

namespace roicl {
namespace {

constexpr double kAlpha = 0.1;
constexpr int kSeedsPerSetting = 10;  // x2 settings = 20 pipeline runs

core::RdrpConfig SmallConfig() {
  core::RdrpConfig config;
  config.alpha = kAlpha;
  config.mc_passes = 10;
  config.drp.hidden_units = 16;
  config.drp.restarts = 1;
  config.drp.train.epochs = 10;
  // Exercise the batched parallel path end to end: small blocks, shared
  // pool. Determinism tests prove the knobs don't change the bits; this
  // test proves the statistics are right through that path.
  config.drp.predict.batch_size = 64;
  config.drp.predict.num_threads = 0;
  return config;
}

exp::SplitSizes SmallSizes() {
  exp::SplitSizes sizes;
  sizes.train_sufficient = 900;
  sizes.calibration = 400;
  sizes.test = 500;
  return sizes;
}

/// One pipeline run: returns the fraction of test intervals containing
/// the test set's own roi* (the deployment target of Definition 2).
double RunOnce(exp::Setting setting, uint64_t seed) {
  synth::SyntheticGenerator generator =
      exp::MakeGenerator(exp::DatasetId::kCriteo);
  DatasetSplits splits =
      exp::BuildSplits(generator, setting, SmallSizes(), seed);

  core::RdrpModel model(SmallConfig());
  model.FitWithCalibration(splits.train, splits.calibration);
  std::vector<metrics::Interval> intervals =
      model.PredictIntervals(splits.test.x);

  double roi_star = core::BinarySearchRoiStar(splits.test);
  int covered = 0;
  for (const metrics::Interval& interval : intervals) {
    covered += interval.Contains(roi_star);
  }
  return static_cast<double>(covered) /
         static_cast<double>(intervals.size());
}

class ConformalCoverageProperty
    : public ::testing::TestWithParam<exp::Setting> {};

TEST_P(ConformalCoverageProperty, EmpiricalCoverageMeetsNominalLevel) {
  std::vector<double> coverages;
  coverages.reserve(kSeedsPerSetting);
  for (int s = 0; s < kSeedsPerSetting; ++s) {
    coverages.push_back(RunOnce(GetParam(), /*seed=*/1000 + 77 * static_cast<uint64_t>(s)));
  }

  double mean = std::accumulate(coverages.begin(), coverages.end(), 0.0) /
                static_cast<double>(coverages.size());

  // The guarantee is marginal over calibration draws, so individual runs
  // fluctuate; and our deployment target (the *test* split's roi*)
  // differs from the calibration roi* by finite-sample noise. Margin:
  // 3 sigma of a Binomial(kSeedsPerSetting * test_n, 1 - alpha) coverage
  // estimate, plus 0.05 slack for the calibration/test roi* mismatch.
  // (Measured means with these fixed seeds: 0.865 SuNo, 0.860 SuCo.)
  int total_intervals = kSeedsPerSetting * SmallSizes().test;
  double binomial_sigma =
      std::sqrt(kAlpha * (1.0 - kAlpha) / total_intervals);
  double threshold = (1.0 - kAlpha) - 3.0 * binomial_sigma - 0.05;
  EXPECT_GE(mean, threshold)
      << "mean coverage " << mean << " across " << kSeedsPerSetting
      << " seeds is below " << threshold;

  // No individual run should collapse: a single badly-calibrated run
  // hiding inside an acceptable mean would still be a bug. The worst
  // fixed-seed run lands at 0.582 (its test roi* drifts furthest from
  // the calibration roi*); half-coverage marks genuine failure.
  for (size_t s = 0; s < coverages.size(); ++s) {
    EXPECT_GE(coverages[s], 0.50) << "seed index " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(SufficientSettings, ConformalCoverageProperty,
                         ::testing::Values(exp::Setting::kSuNo,
                                           exp::Setting::kSuCo),
                         [](const auto& param_info) {
                           return exp::SettingName(param_info.param);
                         });

}  // namespace
}  // namespace roicl
