// End-to-end integration tests: the full Algorithm-4 pipeline over each
// dataset preset, the ablation runner, and cross-module consistency.

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "core/rdrp.h"
#include "core/roi_star.h"
#include "data/csv.h"
#include "exp/ablation.h"
#include "exp/datasets.h"
#include "exp/runner.h"
#include "metrics/cost_curve.h"
#include "metrics/qini.h"

namespace roicl {
namespace {

exp::SplitSizes SmallSizes() {
  exp::SplitSizes sizes;
  sizes.train_sufficient = 3000;
  sizes.calibration = 1000;
  sizes.test = 1500;
  return sizes;
}

exp::MethodHyperparams FastHp() {
  exp::MethodHyperparams hp;
  hp.neural_epochs = 10;
  hp.cate_epochs = 4;
  hp.forest_trees = 8;
  hp.causal_forest_trees = 8;
  hp.mc_passes = 10;
  return hp;
}

class PipelinePerDataset : public ::testing::TestWithParam<exp::DatasetId> {
};

TEST_P(PipelinePerDataset, RdrpPipelineEndToEnd) {
  synth::SyntheticGenerator generator = exp::MakeGenerator(GetParam());
  DatasetSplits splits = exp::BuildSplits(generator, exp::Setting::kInCo,
                                          SmallSizes(), /*seed=*/3);
  core::RdrpModel rdrp(exp::MakeRdrpConfig(FastHp()));
  rdrp.FitWithCalibration(splits.train, splits.calibration);

  std::vector<double> scores = rdrp.PredictRoi(splits.test.x);
  ASSERT_EQ(static_cast<int>(scores.size()), splits.test.n());
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
  double aucc = metrics::Aucc(scores, splits.test);
  // Loose bound: a tiny model on a tiny InCo test set is noisy.
  EXPECT_GT(aucc, 0.35);
  EXPECT_LT(aucc, 1.0);

  // Intervals exist and have positive width after the conformal scaling.
  std::vector<metrics::Interval> intervals =
      rdrp.PredictIntervals(splits.test.x);
  double total_width = 0.0;
  for (const auto& iv : intervals) {
    EXPECT_LE(iv.lo, iv.hi);
    total_width += iv.width();
  }
  EXPECT_GT(total_width, 0.0);
}

TEST_P(PipelinePerDataset, GeneratedDataSurvivesCsvRoundTrip) {
  synth::SyntheticGenerator generator = exp::MakeGenerator(GetParam());
  Rng rng(9);
  RctDataset data = generator.Generate(200, true, &rng);
  // Parameterized instances run as separate concurrent processes under
  // `ctest -j`; the path must be unique per instance or they race on it.
  std::string path = ::testing::TempDir() + "/roicl_integration_" +
                     exp::DatasetName(GetParam()) + ".csv";
  ASSERT_TRUE(WriteDatasetCsv(data, path).ok());
  StatusOr<RctDataset> loaded = ReadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().n(), data.n());
  EXPECT_EQ(loaded.value().dim(), data.dim());
  EXPECT_NEAR(metrics::OracleAucc(loaded.value()),
              metrics::OracleAucc(data), 1e-9);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, PipelinePerDataset,
                         ::testing::ValuesIn(exp::AllDatasets()),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case exp::DatasetId::kCriteo:
                               return "Criteo";
                             case exp::DatasetId::kMeituan:
                               return "Meituan";
                             case exp::DatasetId::kAlibaba:
                               return "Alibaba";
                           }
                           return "?";
                         });

TEST(AblationRunnerTest, VariantsShareTheBaseModel) {
  // The ablation evaluates DRP / w MC / w MC w CP from ONE trained net, so
  // every variant's AUCC must be within heuristic-calibration reach of the
  // base: identical when the "none" form is selected.
  exp::AblationRow row =
      exp::RunAblationSetting(exp::DatasetId::kCriteo, exp::Setting::kSuNo,
                              FastHp(), SmallSizes(), /*seed=*/4);
  EXPECT_GT(row.dr, 0.3);
  EXPECT_GT(row.drp, 0.3);
  for (double v : {row.dr, row.dr_mc, row.drp, row.drp_mc, row.drp_mc_cp}) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(ConsistencyTest, RdrpIntervalsCenterOnDrpPoints) {
  synth::SyntheticGenerator generator =
      exp::MakeGenerator(exp::DatasetId::kCriteo);
  DatasetSplits splits = exp::BuildSplits(generator, exp::Setting::kSuNo,
                                          SmallSizes(), /*seed=*/5);
  // Disable the [0, 1] clipping so the raw Algorithm-3 symmetry is
  // observable; clipped intervals are tested separately below.
  core::RdrpConfig config = exp::MakeRdrpConfig(FastHp());
  config.clip_to_unit = false;
  core::RdrpModel rdrp(config);
  rdrp.FitWithCalibration(splits.train, splits.calibration);
  std::vector<double> point = rdrp.PredictPointRoi(splits.test.x);
  std::vector<metrics::Interval> intervals =
      rdrp.PredictIntervals(splits.test.x);
  for (size_t i = 0; i < intervals.size(); ++i) {
    EXPECT_NEAR((intervals[i].lo + intervals[i].hi) / 2.0, point[i], 1e-9);
  }
}

TEST(ConsistencyTest, ClippedIntervalsStayInUnitRangeAndContainPoint) {
  synth::SyntheticGenerator generator =
      exp::MakeGenerator(exp::DatasetId::kCriteo);
  DatasetSplits splits = exp::BuildSplits(generator, exp::Setting::kSuNo,
                                          SmallSizes(), /*seed=*/5);
  core::RdrpModel rdrp(exp::MakeRdrpConfig(FastHp()));  // clipping on
  rdrp.FitWithCalibration(splits.train, splits.calibration);
  std::vector<double> point = rdrp.PredictPointRoi(splits.test.x);
  std::vector<metrics::Interval> intervals =
      rdrp.PredictIntervals(splits.test.x);
  for (size_t i = 0; i < intervals.size(); ++i) {
    EXPECT_GE(intervals[i].lo, 0.0);
    EXPECT_LE(intervals[i].hi, 1.0);
    // The DRP point is a valid ROI, so it survives the clip.
    EXPECT_TRUE(intervals[i].Contains(point[i])) << i;
  }
}

TEST(ConsistencyTest, OracleDominatesLearnedModelsOnAucc) {
  synth::SyntheticGenerator generator =
      exp::MakeGenerator(exp::DatasetId::kCriteo);
  DatasetSplits splits = exp::BuildSplits(generator, exp::Setting::kSuNo,
                                          SmallSizes(), /*seed=*/6);
  core::DrpModel drp(exp::MakeDrpConfig(FastHp()));
  drp.Fit(splits.train);
  double drp_aucc = metrics::Aucc(drp.PredictRoi(splits.test.x),
                                  splits.test);
  // Allow slack: AUCC is a noisy finite-sample estimate, and a learned
  // model can edge past the oracle on one draw.
  EXPECT_LT(drp_aucc, metrics::OracleAucc(splits.test) + 0.05);
}

TEST(ConsistencyTest, QiniAndAuccAgreeOnOracleVsRandom) {
  synth::SyntheticGenerator generator =
      exp::MakeGenerator(exp::DatasetId::kCriteo);
  Rng rng(7);
  RctDataset data = generator.Generate(8000, false, &rng);
  std::vector<double> oracle(AsSize(data.n())), random_scores(AsSize(data.n()));
  for (int i = 0; i < data.n(); ++i) {
    oracle[AsSize(i)] = data.true_tau_r[AsSize(i)];
    random_scores[AsSize(i)] = rng.Uniform();
  }
  EXPECT_GT(metrics::Aucc(oracle, data), metrics::Aucc(random_scores, data));
  EXPECT_GT(metrics::QiniCoefficient(oracle, data),
            metrics::QiniCoefficient(random_scores, data));
}

TEST(RunnerIntegrationTest, FullSweepOverTwoMethods) {
  exp::MethodHyperparams hp = FastHp();
  std::vector<exp::MethodSpec> methods = {exp::DrpMethod(hp),
                                          exp::RdrpMethod(hp)};
  exp::SplitSizes sizes;
  sizes.train_sufficient = 1200;
  sizes.calibration = 400;
  sizes.test = 600;
  std::vector<exp::OfflineCell> cells =
      exp::RunOfflineSweep(methods, sizes, /*seed=*/8);
  // 3 datasets x 4 settings x 2 methods.
  EXPECT_EQ(cells.size(), 24u);
  for (const auto& cell : cells) {
    EXPECT_TRUE(std::isfinite(cell.aucc));
  }
}

}  // namespace
}  // namespace roicl
