#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

namespace roicl::nn {
namespace {

TEST(SgdTest, MovesAgainstGradient) {
  Matrix param(1, 1, 5.0);
  Matrix grad(1, 1, 2.0);
  Sgd sgd(0.1);
  sgd.Step({&param}, {&grad});
  EXPECT_DOUBLE_EQ(param(0, 0), 4.8);
}

TEST(SgdTest, MomentumAccumulates) {
  Matrix param(1, 1, 0.0);
  Matrix grad(1, 1, 1.0);
  Sgd sgd(1.0, /*momentum=*/0.5);
  sgd.Step({&param}, {&grad});  // v=1, p=-1
  sgd.Step({&param}, {&grad});  // v=1.5, p=-2.5
  EXPECT_DOUBLE_EQ(param(0, 0), -2.5);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
  Matrix param(1, 1, 0.0);
  Matrix grad(1, 1, 10.0);
  Adam adam(0.01);
  adam.Step({&param}, {&grad});
  // Bias correction makes the first Adam step ~= lr * sign(grad).
  EXPECT_NEAR(param(0, 0), -0.01, 1e-5);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2.
  Matrix param(1, 1, -4.0);
  Matrix grad(1, 1, 0.0);
  Adam adam(0.1);
  for (int step = 0; step < 500; ++step) {
    grad(0, 0) = 2.0 * (param(0, 0) - 3.0);
    adam.Step({&param}, {&grad});
  }
  EXPECT_NEAR(param(0, 0), 3.0, 1e-3);
}

TEST(AdamTest, WeightDecayShrinks) {
  Matrix param(1, 1, 1.0);
  Matrix grad(1, 1, 0.0);
  Adam adam(0.1, 0.9, 0.999, 1e-8, /*weight_decay=*/0.5);
  adam.Step({&param}, {&grad});
  EXPECT_LT(param(0, 0), 1.0);
}

TEST(MseLossTest, ValueAndGradient) {
  std::vector<double> targets = {1.0, 2.0};
  MseLoss loss(&targets);
  Matrix preds = {{2.0}, {2.0}};
  Matrix grad;
  double value = loss.Compute(preds, {0, 1}, &grad);
  EXPECT_DOUBLE_EQ(value, 0.5);  // ((2-1)^2 + 0) / 2
  EXPECT_DOUBLE_EQ(grad(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(grad(1, 0), 0.0);
}

TEST(BceLossTest, MatchesClosedForm) {
  std::vector<double> targets = {1.0, 0.0};
  BceWithLogitsLoss loss(&targets);
  Matrix preds = {{0.0}, {0.0}};
  Matrix grad;
  double value = loss.Compute(preds, {0, 1}, &grad);
  EXPECT_NEAR(value, std::log(2.0), 1e-12);
  EXPECT_NEAR(grad(0, 0), -0.25, 1e-12);  // (sigmoid(0) - 1) / 2
  EXPECT_NEAR(grad(1, 0), 0.25, 1e-12);
}

TEST(BceLossTest, StableAtExtremeLogits) {
  std::vector<double> targets = {1.0};
  BceWithLogitsLoss loss(&targets);
  Matrix preds = {{-800.0}};
  Matrix grad;
  double value = loss.Compute(preds, {0}, &grad);
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_TRUE(std::isfinite(grad(0, 0)));
}

TEST(TrainNetworkTest, LearnsLinearRegression) {
  Rng rng(11);
  int n = 600;
  Matrix x(n, 2);
  std::vector<double> y(AsSize(n));
  for (int i = 0; i < n; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    y[AsSize(i)] = 2.0 * x(i, 0) - 1.0 * x(i, 1) + 0.3;
  }
  Mlp net = Mlp::MakeMlp(2, {}, 1, ActivationKind::kRelu, 0.0, &rng);
  MseLoss loss(&y);
  std::vector<int> index(AsSize(n));
  for (int i = 0; i < n; ++i) index[AsSize(i)] = i;
  TrainConfig config;
  config.epochs = 120;
  config.learning_rate = 0.05;
  TrainResult result = TrainNetwork(&net, x, index, {}, loss, config);
  EXPECT_LT(result.final_train_loss, 1e-3);
}

TEST(TrainNetworkTest, LearnsXorWithHiddenLayer) {
  // XOR is the classic non-linearly-separable check for backprop.
  Matrix x = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::vector<double> y = {0.0, 1.0, 1.0, 0.0};
  Rng rng(12);
  Mlp net = Mlp::MakeMlp(2, {8}, 1, ActivationKind::kTanh, 0.0, &rng);
  BceWithLogitsLoss loss(&y);
  TrainConfig config;
  config.epochs = 800;
  config.batch_size = 4;
  config.learning_rate = 0.05;
  TrainNetwork(&net, x, {0, 1, 2, 3}, {}, loss, config);
  Matrix preds = net.Forward(x, Mode::kInfer, nullptr);
  for (int i = 0; i < 4; ++i) {
    double p = Sigmoid(preds(i, 0));
    EXPECT_NEAR(p, y[AsSize(i)], 0.2) << "sample " << i;
  }
}

TEST(TrainNetworkTest, EarlyStoppingRestoresBestModel) {
  Rng rng(13);
  int n = 400;
  Matrix x(n, 1);
  std::vector<double> y(AsSize(n));
  for (int i = 0; i < n; ++i) {
    x(i, 0) = rng.Normal();
    y[AsSize(i)] = 0.5 * x(i, 0) + rng.Normal(0.0, 0.5);  // noisy: overfittable
  }
  Mlp net = Mlp::MakeMlp(1, {32, 32}, 1, ActivationKind::kRelu, 0.0, &rng);
  MseLoss loss(&y);
  std::vector<int> train_index, val_index;
  for (int i = 0; i < 300; ++i) train_index.push_back(i);
  for (int i = 300; i < n; ++i) val_index.push_back(i);
  TrainConfig config;
  config.epochs = 200;
  config.learning_rate = 0.01;
  config.patience = 5;
  TrainResult result =
      TrainNetwork(&net, x, train_index, val_index, loss, config);
  EXPECT_TRUE(result.early_stopped || result.epochs_run == 200);
  // The restored model's validation loss equals the reported best.
  double val = EvaluateLoss(&net, x, val_index, loss);
  EXPECT_NEAR(val, result.best_validation_loss, 1e-9);
}

TEST(MlpTest, CopyIsIndependent) {
  Rng rng(14);
  Mlp net = Mlp::MakeMlp(2, {4}, 1, ActivationKind::kRelu, 0.0, &rng);
  Mlp copy = net;
  Matrix input = {{1.0, -1.0}};
  double before = copy.Forward(input, Mode::kInfer, nullptr)(0, 0);
  (*net.Params()[0])(0, 0) += 5.0;
  double after = copy.Forward(input, Mode::kInfer, nullptr)(0, 0);
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(MlpTest, SnapshotRestoreRoundTrip) {
  Rng rng(15);
  Mlp net = Mlp::MakeMlp(3, {5}, 1, ActivationKind::kElu, 0.0, &rng);
  Matrix input = {{0.1, 0.2, 0.3}};
  double original = net.Forward(input, Mode::kInfer, nullptr)(0, 0);
  std::vector<Matrix> snapshot = net.SnapshotParams();
  for (Matrix* p : net.Params()) *p *= 0.0;
  EXPECT_NE(net.Forward(input, Mode::kInfer, nullptr)(0, 0), original);
  net.RestoreParams(snapshot);
  EXPECT_DOUBLE_EQ(net.Forward(input, Mode::kInfer, nullptr)(0, 0),
                   original);
}

TEST(MlpTest, NumParametersCountsAll) {
  Rng rng(16);
  Mlp net = Mlp::MakeMlp(3, {4}, 2, ActivationKind::kRelu, 0.5, &rng);
  // Dense(3,4): 12 + 4; Dense(4,2): 8 + 2.
  EXPECT_EQ(net.NumParameters(), 26u);
}

}  // namespace
}  // namespace roicl::nn
