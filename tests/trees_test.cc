#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "trees/causal_forest.h"
#include "trees/random_forest.h"
#include "trees/regression_tree.h"

namespace roicl::trees {
namespace {

/// y = 3 * 1{x0 > 0} + noise — one clean split.
void MakeStepData(int n, Matrix* x, std::vector<double>* y, Rng* rng,
                  double noise = 0.05) {
  *x = Matrix(n, 2);
  y->resize(AsSize(n));
  for (int i = 0; i < n; ++i) {
    (*x)(i, 0) = rng->Normal();
    (*x)(i, 1) = rng->Normal();
    (*y)[AsSize(i)] = ((*x)(i, 0) > 0.0 ? 3.0 : 0.0) + rng->Normal(0.0, noise);
  }
}

TEST(TreeCommonTest, CandidateThresholdsEmptyForConstantFeature) {
  Matrix x(10, 1, 5.0);
  std::vector<int> index = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_TRUE(CandidateThresholds(x, index, 0, 8).empty());
}

TEST(TreeCommonTest, CandidateThresholdsAreInteriorAndSorted) {
  Matrix x(100, 1);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) x(i, 0) = rng.Uniform();
  std::vector<int> index(100);
  for (int i = 0; i < 100; ++i) index[AsSize(i)] = i;
  std::vector<double> thresholds = CandidateThresholds(x, index, 0, 16);
  ASSERT_FALSE(thresholds.empty());
  double max_value = 0.0;
  for (int i = 0; i < 100; ++i) max_value = std::max(max_value, x(i, 0));
  for (size_t i = 0; i < thresholds.size(); ++i) {
    EXPECT_LT(thresholds[i], max_value);
    if (i > 0) {
      EXPECT_GT(thresholds[i], thresholds[i - 1]);
    }
  }
}

TEST(TreeCommonTest, SampleFeaturesAllWhenUnlimited) {
  std::vector<int> all = SampleFeatures(5, -1, nullptr);
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TreeCommonTest, SampleFeaturesSubsetSize) {
  Rng rng(2);
  std::vector<int> sub = SampleFeatures(10, 3, &rng);
  EXPECT_EQ(sub.size(), 3u);
  for (int f : sub) {
    EXPECT_GE(f, 0);
    EXPECT_LT(f, 10);
  }
}

TEST(RegressionTreeTest, FindsTheStepSplit) {
  Rng rng(3);
  Matrix x;
  std::vector<double> y;
  MakeStepData(1000, &x, &y, &rng);
  std::vector<int> index(1000);
  for (int i = 0; i < 1000; ++i) index[AsSize(i)] = i;
  RegressionTree tree;
  TreeConfig config;
  config.max_depth = 2;
  tree.Fit(x, y, index, config, &rng);

  EXPECT_NEAR(tree.Predict(Matrix({{1.0, 0.0}}).RowPtr(0)), 3.0, 0.15);
  EXPECT_NEAR(tree.Predict(Matrix({{-1.0, 0.0}}).RowPtr(0)), 0.0, 0.15);
}

TEST(RegressionTreeTest, DepthZeroIsMeanPredictor) {
  Rng rng(4);
  Matrix x;
  std::vector<double> y;
  MakeStepData(500, &x, &y, &rng);
  std::vector<int> index(500);
  for (int i = 0; i < 500; ++i) index[AsSize(i)] = i;
  RegressionTree tree;
  TreeConfig config;
  config.max_depth = 0;
  tree.Fit(x, y, index, config, &rng);
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_NEAR(tree.Predict(x.RowPtr(0)), Mean(y), 1e-9);
}

TEST(RegressionTreeTest, RespectsMinSamplesLeaf) {
  Rng rng(5);
  Matrix x;
  std::vector<double> y;
  MakeStepData(100, &x, &y, &rng);
  std::vector<int> index(100);
  for (int i = 0; i < 100; ++i) index[AsSize(i)] = i;
  RegressionTree tree;
  TreeConfig config;
  config.min_samples_leaf = 60;  // cannot split 100 into two >= 60 halves
  tree.Fit(x, y, index, config, &rng);
  EXPECT_EQ(tree.num_nodes(), 1);
}

TEST(RandomForestTest, BeatsSingleTreeOnSmoothTarget) {
  Rng rng(6);
  int n = 2000;
  Matrix x(n, 3);
  std::vector<double> y(AsSize(n));
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 3; ++c) x(i, c) = rng.Normal();
    y[AsSize(i)] = std::sin(x(i, 0)) + 0.5 * x(i, 1) + rng.Normal(0.0, 0.1);
  }
  ForestConfig config;
  config.num_trees = 40;
  config.tree.max_depth = 7;
  RandomForestRegressor forest(config);
  forest.Fit(x, y);

  double mse = 0.0;
  Rng test_rng(7);
  for (int i = 0; i < 300; ++i) {
    Matrix row(1, 3);
    for (int c = 0; c < 3; ++c) row(0, c) = test_rng.Normal();
    double target = std::sin(row(0, 0)) + 0.5 * row(0, 1);
    double diff = forest.Predict(row.RowPtr(0)) - target;
    mse += diff * diff;
  }
  mse /= 300;
  EXPECT_LT(mse, 0.15);
}

TEST(RandomForestTest, DeterministicBySeed) {
  Rng rng(8);
  Matrix x;
  std::vector<double> y;
  MakeStepData(400, &x, &y, &rng);
  ForestConfig config;
  config.num_trees = 10;
  config.seed = 99;
  RandomForestRegressor a(config), b(config);
  a.Fit(x, y);
  b.Fit(x, y);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.Predict(x.RowPtr(i)), b.Predict(x.RowPtr(i)));
  }
}

/// Heterogeneous-effect RCT: tau(x) = 2 for x0 > 0, else 0.5.
void MakeCausalData(int n, Matrix* x, std::vector<int>* t,
                    std::vector<double>* y, Rng* rng) {
  *x = Matrix(n, 2);
  t->resize(AsSize(n));
  y->resize(AsSize(n));
  for (int i = 0; i < n; ++i) {
    (*x)(i, 0) = rng->Normal();
    (*x)(i, 1) = rng->Normal();
    (*t)[AsSize(i)] = rng->Bernoulli(0.5) ? 1 : 0;
    double tau = (*x)(i, 0) > 0.0 ? 2.0 : 0.5;
    double base = 1.0 + 0.3 * (*x)(i, 1);
    (*y)[AsSize(i)] = base + (*t)[AsSize(i)] * tau + rng->Normal(0.0, 0.3);
  }
}

class CausalForestHonesty : public ::testing::TestWithParam<bool> {};

TEST_P(CausalForestHonesty, RecoversHeterogeneousEffect) {
  Rng rng(9);
  Matrix x;
  std::vector<int> t;
  std::vector<double> y;
  MakeCausalData(4000, &x, &t, &y, &rng);
  CausalForestConfig config;
  config.num_trees = 40;
  config.honest = GetParam();
  config.tree.max_depth = 4;
  CausalForest forest(config);
  forest.Fit(x, t, y);

  Matrix hi = {{1.5, 0.0}};
  Matrix lo = {{-1.5, 0.0}};
  EXPECT_NEAR(forest.PredictCate(hi.RowPtr(0)), 2.0, 0.4);
  EXPECT_NEAR(forest.PredictCate(lo.RowPtr(0)), 0.5, 0.4);
}

INSTANTIATE_TEST_SUITE_P(HonestAndAdaptive, CausalForestHonesty,
                         ::testing::Bool());

TEST(CausalForestTest, StdDevIsNonNegativeAndFinite) {
  Rng rng(10);
  Matrix x;
  std::vector<int> t;
  std::vector<double> y;
  MakeCausalData(1000, &x, &t, &y, &rng);
  CausalForestConfig config;
  config.num_trees = 20;
  CausalForest forest(config);
  forest.Fit(x, t, y);
  for (int i = 0; i < 10; ++i) {
    double sd = forest.PredictCateStdDev(x.RowPtr(i));
    EXPECT_GE(sd, 0.0);
    EXPECT_TRUE(std::isfinite(sd));
  }
}

TEST(CausalForestTest, ConstantEffectGivesFlatPredictions) {
  Rng rng(11);
  int n = 3000;
  Matrix x(n, 2);
  std::vector<int> t(AsSize(n));
  std::vector<double> y(AsSize(n));
  for (int i = 0; i < n; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    t[AsSize(i)] = rng.Bernoulli(0.5) ? 1 : 0;
    y[AsSize(i)] = 1.0 + t[AsSize(i)] * 1.5 + rng.Normal(0.0, 0.2);
  }
  CausalForestConfig config;
  config.num_trees = 30;
  CausalForest forest(config);
  forest.Fit(x, t, y);
  RunningStats stats;
  for (int i = 0; i < 200; ++i) stats.Add(forest.PredictCate(x.RowPtr(i)));
  EXPECT_NEAR(stats.mean(), 1.5, 0.15);
  EXPECT_LT(stats.stddev(), 0.25);
}

}  // namespace
}  // namespace roicl::trees
