#include "synth/synthetic_generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/stats.h"
#include "synth/shift.h"

namespace roicl::synth {
namespace {

class PresetTest : public ::testing::TestWithParam<SyntheticConfig> {};

TEST_P(PresetTest, GeneratesValidRct) {
  SyntheticGenerator generator(GetParam());
  Rng rng(1);
  RctDataset dataset = generator.Generate(2000, /*shifted=*/false, &rng);
  dataset.Validate();
  EXPECT_EQ(dataset.n(), 2000);
  EXPECT_EQ(dataset.dim(), GetParam().num_features);
  EXPECT_TRUE(dataset.has_ground_truth());
  // RCT: roughly half treated.
  EXPECT_NEAR(dataset.NumTreated() / 2000.0, 0.5, 0.05);
}

TEST_P(PresetTest, GroundTruthRespectsAssumptions) {
  SyntheticGenerator generator(GetParam());
  Rng rng(2);
  RctDataset dataset = generator.Generate(1000, false, &rng);
  for (int i = 0; i < dataset.n(); ++i) {
    // Assumption 4: positive effects; Assumption 3: ROI in (0, 1).
    EXPECT_GT(dataset.true_tau_c[AsSize(i)], 0.0);
    EXPECT_GT(dataset.true_tau_r[AsSize(i)], 0.0);
    double roi = dataset.TrueRoi(i);
    EXPECT_GT(roi, 0.0);
    EXPECT_LT(roi, 1.0);
  }
}

TEST_P(PresetTest, OutcomesAreBinary) {
  SyntheticGenerator generator(GetParam());
  Rng rng(3);
  RctDataset dataset = generator.Generate(500, false, &rng);
  for (int i = 0; i < dataset.n(); ++i) {
    EXPECT_TRUE(dataset.y_cost[AsSize(i)] == 0.0 || dataset.y_cost[AsSize(i)] == 1.0);
    EXPECT_TRUE(dataset.y_revenue[AsSize(i)] == 0.0 || dataset.y_revenue[AsSize(i)] == 1.0);
  }
}

TEST_P(PresetTest, AverageLiftsMatchGroundTruth) {
  // The realized RCT difference-in-means should estimate the mean of the
  // ground-truth tau columns.
  SyntheticGenerator generator(GetParam());
  Rng rng(4);
  RctDataset dataset = generator.Generate(60000, false, &rng);
  EXPECT_NEAR(dataset.AverageCostLift(), Mean(dataset.true_tau_c), 0.02);
  EXPECT_NEAR(dataset.AverageRevenueLift(), Mean(dataset.true_tau_r), 0.02);
}

TEST_P(PresetTest, ShiftChangesSegmentMixOnly) {
  SyntheticGenerator generator(GetParam());
  Rng rng(5);
  RctDataset plain = generator.Generate(20000, false, &rng);
  RctDataset shifted = generator.Generate(20000, true, &rng);
  // Segment histograms differ...
  int k = generator.config().num_segments;
  std::vector<double> h0(AsSize(k), 0.0), h1(AsSize(k), 0.0);
  for (int s : plain.segment) h0[AsSize(s)] += 1.0 / plain.n();
  for (int s : shifted.segment) h1[AsSize(s)] += 1.0 / shifted.n();
  double tv = 0.0;
  for (int s = 0; s < k; ++s) tv += std::fabs(h0[AsSize(s)] - h1[AsSize(s)]);
  EXPECT_GT(tv / 2.0, 0.2) << "shift should move substantial mass";
  // ...but P(Y|X) is the same mechanism: the oracles agree on any row.
  for (int i = 0; i < 50; ++i) {
    const double* row = shifted.x.RowPtr(i);
    EXPECT_NEAR(shifted.true_tau_c[AsSize(i)], generator.TauC(row), 1e-12);
    EXPECT_NEAR(shifted.true_tau_r[AsSize(i)], generator.TauR(row), 1e-12);
  }
}

TEST_P(PresetTest, DeterministicGivenSeed) {
  SyntheticGenerator g1(GetParam());
  SyntheticGenerator g2(GetParam());
  Rng rng1(42), rng2(42);
  RctDataset a = g1.Generate(100, false, &rng1);
  RctDataset b = g2.Generate(100, false, &rng2);
  EXPECT_EQ(a.treatment, b.treatment);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.x(i, 0), b.x(i, 0));
    EXPECT_DOUBLE_EQ(a.y_revenue[AsSize(i)], b.y_revenue[AsSize(i)]);
  }
}

TEST_P(PresetTest, RoiIsHeterogeneous) {
  SyntheticGenerator generator(GetParam());
  Rng rng(6);
  RctDataset dataset = generator.Generate(5000, false, &rng);
  std::vector<double> rois(AsSize(dataset.n()));
  for (int i = 0; i < dataset.n(); ++i) rois[AsSize(i)] = dataset.TrueRoi(i);
  EXPECT_GT(StdDev(rois), 0.05) << "degenerate ROI would make C-BTAP moot";
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetTest,
                         ::testing::Values(CriteoSynthConfig(),
                                           MeituanSynthConfig(),
                                           AlibabaSynthConfig()),
                         [](const auto& param_info) {
                           std::string name = param_info.param.name;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(AlibabaPresetTest, FeaturesAreDiscrete) {
  SyntheticGenerator generator(AlibabaSynthConfig());
  Rng rng(7);
  RctDataset dataset = generator.Generate(200, false, &rng);
  for (int i = 0; i < dataset.n(); ++i) {
    for (int c = 0; c < dataset.dim(); ++c) {
      double v = dataset.x(i, c);
      EXPECT_DOUBLE_EQ(v, std::round(v));
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 9.0);
    }
  }
}

TEST(ResampleWithCovariateShiftTest, ShiftsTargetFeatureMean) {
  SyntheticGenerator generator(CriteoSynthConfig());
  Rng rng(8);
  RctDataset dataset = generator.Generate(5000, false, &rng);
  RctDataset shifted =
      ResampleWithCovariateShift(dataset, /*feature=*/0, /*gamma=*/1.5,
                                 /*n_out=*/5000, &rng);
  EXPECT_EQ(shifted.n(), 5000);
  double mean_before = Mean(dataset.x.Col(0));
  double mean_after = Mean(shifted.x.Col(0));
  EXPECT_GT(mean_after, mean_before + 0.2);
  // Rows are copied whole, so ground truth stays consistent.
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(shifted.true_tau_c[AsSize(i)],
                generator.TauC(shifted.x.RowPtr(i)), 1e-12);
  }
}

TEST(ResampleWithCovariateShiftTest, ZeroGammaKeepsDistribution) {
  SyntheticGenerator generator(CriteoSynthConfig());
  Rng rng(9);
  RctDataset dataset = generator.Generate(3000, false, &rng);
  RctDataset same =
      ResampleWithCovariateShift(dataset, 0, 0.0, 3000, &rng);
  EXPECT_NEAR(Mean(same.x.Col(0)), Mean(dataset.x.Col(0)), 0.1);
}

}  // namespace
}  // namespace roicl::synth
