#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/row_source.h"
#include "alloc/streaming.h"
#include "common/math_util.h"
#include "common/rng.h"

/// \file
/// Seeded fuzz battery for the streaming allocator's frontier merge.
/// Adversarial inputs — all-equal ROI keys, NaN/infinite values, zero
/// and over-subscribed budgets, empty and single-row shards, k = 0 caps
/// — must never violate budget feasibility or crash; this binary runs
/// under ASan, UBSan, and (for the concurrent-shard-accumulation case)
/// TSan via tools/run_{asan,ubsan,tsan}.sh.

namespace roicl::alloc {
namespace {

/// Invariants every successful allocation must satisfy, whatever the
/// input: spend inside the budget with no epsilon, selected indices
/// valid and unique, and the reported spend the exact sum of the
/// selected costs in selection order.
void CheckInvariants(const StreamingResult& result,
                     const std::vector<double>& roi,
                     const std::vector<double>& cost, double budget) {
  EXPECT_LE(result.spent, budget);
  std::vector<int64_t> seen;
  double replayed = 0.0;
  for (int64_t index : result.selected) {
    ASSERT_GE(index, 0);
    ASSERT_LT(index, static_cast<int64_t>(roi.size()));
    seen.push_back(index);
    replayed += cost[AsSize64(index)];
  }
  EXPECT_EQ(result.spent, replayed);
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end())
      << "duplicate selection";
}

class AllocFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocFuzz, AdversarialInstancesNeverViolateFeasibility) {
  Rng rng(GetParam() * 2654435761 + 3);
  int n = static_cast<int>(rng.UniformInt(120));
  std::vector<double> roi(AsSize(n));
  std::vector<double> cost(AsSize(n));
  uint64_t pattern = rng.UniformInt(4);
  for (int i = 0; i < n; ++i) {
    switch (pattern) {
      case 0:  // all-equal ROI: ranking decided purely by index
        roi[AsSize(i)] = 0.5;
        break;
      case 1:  // two-value ROI: dense duplicate collisions
        roi[AsSize(i)] = rng.UniformInt(2) == 0 ? 0.25 : 0.75;
        break;
      case 2:  // zero-cost rows mixed in
        roi[AsSize(i)] = rng.Uniform(0.05, 0.95);
        break;
      default:
        roi[AsSize(i)] = rng.Uniform(-0.5, 0.95);  // negative ROI too
        break;
    }
    cost[AsSize(i)] =
        (pattern == 2 && rng.UniformInt(4) == 0) ? 0.0
                                                 : rng.Uniform(0.0, 2.0);
  }
  // Budget regimes: zero, binding, and over-subscribed (nothing binds).
  double budget = 0.0;
  switch (rng.UniformInt(3)) {
    case 0:
      budget = 0.0;
      break;
    case 1:
      budget = rng.Uniform(0.0, 0.3 * static_cast<double>(n) + 0.5);
      break;
    default:
      budget = 1e6;  // over-subscribed: every affordable row fits
      break;
  }
  int shards = 1 + static_cast<int>(rng.UniformInt(9));  // often > n
  int chunk_rows = 1 + static_cast<int>(rng.UniformInt(40));
  for (AllocMode mode : {AllocMode::kGreedy, AllocMode::kDual}) {
    StreamingOptions options;
    options.mode = mode;
    options.num_shards = shards;
    VectorRowSource source(roi, cost, chunk_rows);
    StatusOr<StreamingResult> result =
        StreamingAllocate(&source, budget, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    CheckInvariants(result.value(), roi, cost, budget);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocFuzz, ::testing::Range<uint64_t>(1, 61));

TEST(AllocFuzzEdge, EmptyPopulation) {
  for (AllocMode mode : {AllocMode::kGreedy, AllocMode::kDual}) {
    StreamingOptions options;
    options.mode = mode;
    options.num_shards = 8;  // every shard empty
    VectorRowSource source({}, {}, /*chunk_rows=*/16);
    StatusOr<StreamingResult> result =
        StreamingAllocate(&source, 10.0, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().selected.empty());
    EXPECT_EQ(result.value().spent, 0.0);
  }
}

TEST(AllocFuzzEdge, SingleRowManyShards) {
  for (AllocMode mode : {AllocMode::kGreedy, AllocMode::kDual}) {
    StreamingOptions options;
    options.mode = mode;
    options.num_shards = 8;  // seven shards of size zero, one of size one
    VectorRowSource source({0.6}, {1.0}, /*chunk_rows=*/16);
    StatusOr<StreamingResult> result =
        StreamingAllocate(&source, 2.0, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().selected, (std::vector<int64_t>{0}));
    EXPECT_EQ(result.value().spent, 1.0);
  }
}

TEST(AllocFuzzEdge, NanRoiIsRejectedNotPropagated) {
  std::vector<double> roi = {0.5, std::numeric_limits<double>::quiet_NaN()};
  std::vector<double> cost = {1.0, 1.0};
  VectorRowSource source(roi, cost, /*chunk_rows=*/16);
  StatusOr<StreamingResult> result =
      StreamingAllocate(&source, 2.0, StreamingOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(AllocFuzzEdge, NegativeAndInfiniteCostsAreRejected) {
  for (double bad : {-1.0, std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN()}) {
    VectorRowSource source({0.5, 0.6}, {1.0, bad}, /*chunk_rows=*/16);
    StatusOr<StreamingResult> result =
        StreamingAllocate(&source, 2.0, StreamingOptions{});
    ASSERT_FALSE(result.ok()) << "cost=" << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(AllocFuzzEdge, BadBudgetAndOptionsAreRejected) {
  VectorRowSource source({0.5}, {1.0}, /*chunk_rows=*/16);
  EXPECT_EQ(StreamingAllocate(&source, std::nan(""), StreamingOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StreamingAllocate(&source, -1.0, StreamingOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  StreamingOptions bad_shards;
  bad_shards.num_shards = 0;
  EXPECT_EQ(StreamingAllocate(&source, 1.0, bad_shards).status().code(),
            StatusCode::kInvalidArgument);
  StreamingOptions bad_grid;
  bad_grid.mode = AllocMode::kDual;
  bad_grid.dual_grid = 1;
  EXPECT_EQ(StreamingAllocate(&source, 1.0, bad_grid).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AllocFuzzEdge, CapTooSmallForChunkBufferFailsCleanly) {
  VectorRowSource source({0.5, 0.6}, {1.0, 1.0}, /*chunk_rows=*/16);
  StreamingOptions options;
  options.memory_cap_bytes = 1;  // cannot even hold one chunk: k = 0
  StatusOr<StreamingResult> result =
      StreamingAllocate(&source, 2.0, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AllocFuzzEdge, CapTooSmallForFrontierFailsCleanly) {
  // The chunk buffer fits but the frontier's first growth does not.
  std::vector<double> roi(512, 0.5);
  std::vector<double> cost(512, 0.001);  // huge budget-feasible set
  VectorRowSource source(roi, cost, /*chunk_rows=*/1);
  StreamingOptions options;
  options.memory_cap_bytes = 64;  // chunk (16B) fits; 64 items do not
  StatusOr<StreamingResult> result =
      StreamingAllocate(&source, 1e9, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

/// Direct fuzz of the frontier data structure: after Compact, the kept
/// list must be rank-sorted and be exactly the prefix whose FP prefix
/// sum first exceeds the budget (the stop sentinel being the only row
/// past the budget).
TEST(FrontierFuzz, InvariantHoldsUnderRandomAddCompactInterleaving) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 31337);
    double budget = rng.Uniform(0.0, 20.0);
    MemoryAccountant accountant(size_t{16} << 20);
    ShardFrontier frontier(budget, &accountant);
    int n = 1 + static_cast<int>(rng.UniformInt(600));
    for (int i = 0; i < n; ++i) {
      double roi = rng.UniformInt(3) == 0 ? 0.5 : rng.Uniform(0.0, 1.0);
      ASSERT_TRUE(frontier.Add(i, roi, rng.Uniform(0.0, 2.0)));
      if (rng.UniformInt(50) == 0) {
        ASSERT_TRUE(frontier.Compact());
      }
    }
    ASSERT_TRUE(frontier.Compact());
    const std::vector<FrontierItem>& kept = frontier.items();
    EXPECT_TRUE(std::is_sorted(kept.begin(), kept.end(), RankBefore));
    double spent = 0.0;
    for (size_t j = 0; j < kept.size(); ++j) {
      spent += kept[j].cost;
      if (spent > budget) {
        // Only the sentinel may cross the budget, and it must be last.
        EXPECT_EQ(j, kept.size() - 1) << "non-sentinel row past budget";
      }
    }
  }
}

/// The TSan case: concurrent shard accumulation must be bitwise
/// identical to the sequential path — shards partition rows disjointly
/// and each shard sees its rows in index order at any interleaving.
TEST(ConcurrentShardAccumulation, ParallelMatchesSequentialBitwise) {
  Rng rng(4242);
  const int n = 20000;
  std::vector<double> roi(AsSize(n));
  std::vector<double> cost(AsSize(n));
  for (int i = 0; i < n; ++i) {
    roi[AsSize(i)] = 0.05 + 0.05 * static_cast<double>(rng.UniformInt(18));
    cost[AsSize(i)] = rng.Uniform(0.2, 2.0);
  }
  double budget = 300.0;
  StreamingOptions sequential;
  sequential.num_shards = 8;
  VectorRowSource source_a(roi, cost, /*chunk_rows=*/512);
  StatusOr<StreamingResult> a =
      StreamingAllocate(&source_a, budget, sequential);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  for (int repeat = 0; repeat < 3; ++repeat) {
    StreamingOptions parallel = sequential;
    parallel.parallel_shards = true;
    VectorRowSource source_b(roi, cost, /*chunk_rows=*/512);
    StatusOr<StreamingResult> b =
        StreamingAllocate(&source_b, budget, parallel);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a.value().selected, b.value().selected);
    EXPECT_EQ(a.value().spent, b.value().spent);
  }
}

}  // namespace
}  // namespace roicl::alloc
