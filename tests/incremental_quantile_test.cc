#include "core/incremental_quantile.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/conformal.h"

namespace roicl::core {
namespace {

/// The batch reference the treap must match bitwise: the most recent
/// `window` scores through the same rank expression the calibration path
/// uses.
double BatchQHat(const std::deque<double>& window, double alpha) {
  std::vector<double> scores(window.begin(), window.end());
  return WindowedConformalScoreQuantile(scores, scores.size(), alpha);
}

TEST(IncrementalQuantile, MatchesBatchOnSortedPrefixInserts) {
  IncrementalQuantile iq;
  std::deque<double> window;
  for (int i = 1; i <= 64; ++i) {
    double value = 0.25 * i;
    iq.Insert(value);
    window.push_back(value);
    for (double alpha : {0.05, 0.1, 0.2, 0.5}) {
      EXPECT_EQ(iq.QHat(alpha), BatchQHat(window, alpha))
          << "n=" << i << " alpha=" << alpha;
    }
  }
}

TEST(IncrementalQuantile, KthIsTheOrderStatistic) {
  IncrementalQuantile iq;
  std::vector<double> values = {5.0, 1.0, 3.0, 3.0, 2.0, 8.0, 3.0};
  for (double v : values) iq.Insert(v);
  std::sort(values.begin(), values.end());
  ASSERT_EQ(iq.size(), values.size());
  for (std::size_t k = 1; k <= values.size(); ++k) {
    EXPECT_EQ(iq.Kth(k), values[k - 1]) << "k=" << k;
  }
}

TEST(IncrementalQuantile, EraseRemovesOneInstanceAndReportsAbsent) {
  IncrementalQuantile iq;
  iq.Insert(1.0);
  iq.Insert(1.0);
  iq.Insert(2.0);
  EXPECT_FALSE(iq.Erase(3.0));
  EXPECT_TRUE(iq.Erase(1.0));
  EXPECT_EQ(iq.size(), 2u);
  EXPECT_EQ(iq.Kth(1), 1.0);  // one duplicate survives
  EXPECT_TRUE(iq.Erase(1.0));
  EXPECT_FALSE(iq.Erase(1.0));
  EXPECT_EQ(iq.size(), 1u);
  EXPECT_EQ(iq.Kth(1), 2.0);
}

TEST(IncrementalQuantile, StarvedWindowReturnsInfinityLikeBatch) {
  // ceil((1-alpha)(n+1)) > n for small n: both paths must agree on +inf
  // so the recalibrator's max-score fallback triggers identically.
  IncrementalQuantile iq;
  std::deque<double> window;
  for (int i = 0; i < 3; ++i) {
    iq.Insert(1.0 + i);
    window.push_back(1.0 + i);
    double got = iq.QHat(0.05);
    double want = BatchQHat(window, 0.05);
    EXPECT_EQ(std::isinf(got), std::isinf(want)) << "n=" << i + 1;
    if (!std::isinf(want)) EXPECT_EQ(got, want);
  }
  EXPECT_TRUE(std::isinf(iq.QHat(0.05)));
  EXPECT_EQ(iq.QHat(0.05), std::numeric_limits<double>::infinity());
}

TEST(IncrementalQuantile, ClearEmptiesAndAcceptsReinsertion) {
  IncrementalQuantile iq;
  for (int i = 0; i < 10; ++i) iq.Insert(0.5 * i);
  iq.Clear();
  EXPECT_TRUE(iq.empty());
  iq.Insert(7.0);
  EXPECT_EQ(iq.size(), 1u);
  EXPECT_EQ(iq.Kth(1), 7.0);
}

/// The invariant the rolling recalibrator's hot path relies on: under
/// arbitrary insert/evict interleavings — duplicate-heavy value grids,
/// window sizes from 1 to 257, churn with re-insertion — the treap's
/// QHat is bitwise-identical to the batch quantile of the surviving
/// window at every step. 40 seeds, deterministic (PCG32).
TEST(IncrementalQuantile, MatchesBatchAcrossSeedsWindowsAndChurn) {
  const std::size_t kWindowSizes[] = {1, 5, 16, 64, 257};
  const double kAlphas[] = {0.05, 0.1, 0.2, 0.5};
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed, /*stream=*/17);
    std::size_t max_window = kWindowSizes[seed % 5];
    IncrementalQuantile iq;
    std::deque<double> window;
    for (int step = 0; step < 400; ++step) {
      double value;
      if (rng.Bernoulli(0.4)) {
        // Coarse grid: forces duplicate nodes and exercises the
        // per-node count bookkeeping on both insert and erase.
        value = 0.5 * rng.UniformInt(8);
      } else {
        value = rng.Uniform(-10.0, 10.0);
      }
      iq.Insert(value);
      window.push_back(value);
      while (window.size() > max_window) {
        ASSERT_TRUE(iq.Erase(window.front()));
        window.pop_front();
      }
      ASSERT_EQ(iq.size(), window.size());
      if (step % 7 == 0 || window.size() == max_window) {
        double alpha = kAlphas[(seed + step) % 4];
        double got = iq.QHat(alpha);
        double want = BatchQHat(window, alpha);
        // Bitwise: +inf == +inf and finite quantiles are the exact
        // double the batch rank selection produces.
        ASSERT_EQ(got, want) << "seed=" << seed << " step=" << step
                             << " window=" << max_window
                             << " alpha=" << alpha;
      }
    }
  }
}

TEST(IncrementalQuantile, MoveTransfersTheTree) {
  IncrementalQuantile a;
  for (int i = 0; i < 5; ++i) a.Insert(1.0 * i);
  IncrementalQuantile b(std::move(a));
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.Kth(3), 2.0);
  IncrementalQuantile c;
  c.Insert(99.0);
  c = std::move(b);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.Kth(5), 4.0);
}

}  // namespace
}  // namespace roicl::core
