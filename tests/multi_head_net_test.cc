#include "uplift/multi_head_net.h"

#include <gtest/gtest.h>

namespace roicl::uplift {
namespace {

MultiHeadNet MakeNet(int input_dim, int rep_dim, int heads, Rng* rng) {
  nn::Mlp trunk = nn::Mlp::MakeMlp(input_dim, {8}, rep_dim,
                                   nn::ActivationKind::kTanh, 0.0, rng);
  std::vector<nn::Mlp> head_nets;
  for (int h = 0; h < heads; ++h) {
    head_nets.push_back(nn::Mlp::MakeMlp(rep_dim, {6}, 1,
                                         nn::ActivationKind::kTanh, 0.0,
                                         rng));
  }
  return MultiHeadNet(std::move(trunk), std::move(head_nets));
}

TEST(MultiHeadNetTest, OutputShapeMatchesHeadCount) {
  Rng rng(1);
  MultiHeadNet net = MakeNet(4, 5, 3, &rng);
  Matrix input(7, 4);
  Matrix out = net.Forward(input, nn::Mode::kInfer, nullptr);
  EXPECT_EQ(out.rows(), 7);
  EXPECT_EQ(out.cols(), 3);
}

TEST(MultiHeadNetTest, ParamsCoverTrunkAndHeads) {
  Rng rng(2);
  MultiHeadNet net = MakeNet(4, 5, 2, &rng);
  // trunk: Dense(4,8)+Dense(8,5) -> 4 param matrices;
  // each head: Dense(5,6)+Dense(6,1) -> 4; total 4 + 2*4 = 12.
  EXPECT_EQ(net.Params().size(), 12u);
  EXPECT_EQ(net.Grads().size(), 12u);
}

TEST(MultiHeadNetTest, GradientMatchesFiniteDifference) {
  Rng rng(3);
  MultiHeadNet net = MakeNet(3, 4, 2, &rng);
  Matrix input(5, 3);
  Rng data_rng(4);
  for (double& v : input.data()) v = data_rng.Normal();

  Matrix out = net.Forward(input, nn::Mode::kTrain, &rng);
  Matrix grad_out(out.rows(), out.cols(), 1.0);
  net.ZeroGrads();
  Matrix grad_in = net.Backward(grad_out);

  auto loss_at = [&]() {
    Matrix o = net.Forward(input, nn::Mode::kInfer, nullptr);
    double total = 0.0;
    for (double v : o.data()) total += v;
    return total;
  };
  const double h = 1e-6;
  std::vector<Matrix*> params = net.Params();
  std::vector<Matrix*> grads = net.Grads();
  for (size_t p = 0; p < params.size(); ++p) {
    for (size_t k = 0; k < params[p]->size(); k += 5) {
      double original = params[p]->data()[k];
      params[p]->data()[k] = original + h;
      double plus = loss_at();
      params[p]->data()[k] = original - h;
      double minus = loss_at();
      params[p]->data()[k] = original;
      EXPECT_NEAR(grads[p]->data()[k], (plus - minus) / (2 * h), 2e-5)
          << "param " << p << " entry " << k;
    }
  }
  // Input gradient: shared trunk accumulates from both heads.
  Matrix perturbed = input;
  for (size_t k = 0; k < perturbed.size(); k += 3) {
    double original = perturbed.data()[k];
    perturbed.data()[k] = original + h;
    Matrix o_plus = net.Forward(perturbed, nn::Mode::kInfer, nullptr);
    perturbed.data()[k] = original - h;
    Matrix o_minus = net.Forward(perturbed, nn::Mode::kInfer, nullptr);
    perturbed.data()[k] = original;
    double plus = 0.0, minus = 0.0;
    for (double v : o_plus.data()) plus += v;
    for (double v : o_minus.data()) minus += v;
    EXPECT_NEAR(grad_in.data()[k], (plus - minus) / (2 * h), 2e-5);
  }
}

TEST(MultiHeadNetTest, SnapshotRestoreRoundTrip) {
  Rng rng(5);
  MultiHeadNet net = MakeNet(2, 3, 2, &rng);
  Matrix input = {{0.5, -0.5}};
  Matrix before = net.Forward(input, nn::Mode::kInfer, nullptr);
  std::vector<Matrix> snapshot = net.SnapshotParams();
  for (Matrix* p : net.Params()) *p *= 0.5;
  net.RestoreParams(snapshot);
  Matrix after = net.Forward(input, nn::Mode::kInfer, nullptr);
  EXPECT_DOUBLE_EQ(before(0, 0), after(0, 0));
  EXPECT_DOUBLE_EQ(before(0, 1), after(0, 1));
}

}  // namespace
}  // namespace roicl::uplift
