// API-contract tests: misuse aborts loudly, documented edge behaviours
// hold, and configuration corner cases work.

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "abtest/simulator.h"
#include "core/calibration.h"
#include "core/rdrp.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "trees/causal_forest.h"
#include "trees/regression_tree.h"
#include "uplift/neural_cate.h"
#include "uplift/regressor.h"

namespace roicl {
namespace {

// ---------- nn ----------

TEST(NnGuardsTest, DenseRejectsBadDimensions) {
  Rng rng(1);
  EXPECT_DEATH(nn::Dense(0, 4, nn::Init::kXavier, &rng), "");
  EXPECT_DEATH(nn::Dense(4, 0, nn::Init::kXavier, &rng), "");
}

TEST(NnGuardsTest, DropoutRejectsBadRate) {
  EXPECT_DEATH(nn::Dropout(-0.1), "");
  EXPECT_DEATH(nn::Dropout(1.0), "");
}

TEST(NnGuardsTest, OptimizerRejectsChangedParamList) {
  Matrix a(2, 2), b(3, 3), ga(2, 2), gb(3, 3);
  nn::Adam adam(0.01);
  adam.Step({&a}, {&ga});
  EXPECT_DEATH(adam.Step({&a, &b}, {&ga, &gb}), "different parameter");
  adam.Reset();
  adam.Step({&a, &b}, {&ga, &gb});  // OK after Reset
}

TEST(NnGuardsTest, MakeMlpWithNoHiddenIsLinear) {
  Rng rng(2);
  nn::Mlp net = nn::Mlp::MakeMlp(3, {}, 2, nn::ActivationKind::kRelu, 0.5,
                                 &rng);
  EXPECT_EQ(net.num_layers(), 1u);  // single Dense, no activation/dropout
  Matrix out = net.Forward(Matrix(4, 3), nn::Mode::kInfer, nullptr);
  EXPECT_EQ(out.cols(), 2);
}

TEST(NnGuardsTest, BatchLargerThanDataStillTrains) {
  Rng rng(3);
  Matrix x(10, 1);
  std::vector<double> y(10, 1.0);
  for (int i = 0; i < 10; ++i) x(i, 0) = rng.Normal();
  nn::Mlp net = nn::Mlp::MakeMlp(1, {4}, 1, nn::ActivationKind::kTanh, 0.0,
                                 &rng);
  nn::MseLoss loss(&y);
  nn::TrainConfig config;
  config.epochs = 5;
  config.batch_size = 1000;  // > n
  std::vector<int> index = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  nn::TrainResult result = nn::TrainNetwork(&net, x, index, {}, loss,
                                            config);
  EXPECT_EQ(result.epochs_run, 5);
  EXPECT_TRUE(std::isfinite(result.final_train_loss));
}

// ---------- trees ----------

TEST(TreeGuardsTest, PredictBeforeFitAborts) {
  trees::RegressionTree tree;
  double row[1] = {0.0};
  EXPECT_DEATH(tree.Predict(row), "before Fit");
  trees::RandomForestRegressor forest((trees::ForestConfig()));
  EXPECT_DEATH(forest.Predict(row), "before Fit");
  trees::CausalForest causal((trees::CausalForestConfig()));
  EXPECT_DEATH(causal.PredictCate(row), "before Fit");
}

TEST(TreeGuardsTest, SingleLeafTreePredictsMean) {
  Matrix x(5, 1);
  std::vector<double> y = {1, 2, 3, 4, 5};
  std::vector<int> index = {0, 1, 2, 3, 4};
  trees::RegressionTree tree;
  trees::TreeConfig config;
  config.min_samples_leaf = 100;  // unsplittable
  tree.Fit(x, y, index, config, nullptr);
  EXPECT_DOUBLE_EQ(tree.Predict(x.RowPtr(0)), 3.0);
}

// ---------- uplift ----------

TEST(UpliftGuardsTest, NeuralCatePredictBeforeFitAborts) {
  uplift::NeuralCate model(uplift::NeuralCateKind::kTarnet,
                           uplift::NeuralCateConfig());
  EXPECT_DEATH(model.PredictCate(Matrix(1, 2)), "before Fit");
}

TEST(UpliftGuardsTest, RidgePredictDimensionMismatchAborts) {
  uplift::RidgeRegressor ridge(1.0);
  Matrix x(10, 2);
  std::vector<double> y(10, 1.0);
  ridge.Fit(x, y);
  EXPECT_DEATH(ridge.Predict(Matrix(1, 3)), "");
}

// ---------- core ----------

TEST(CoreGuardsTest, RdrpPredictBeforeCalibrationAborts) {
  core::RdrpModel rdrp((core::RdrpConfig()));
  EXPECT_DEATH(rdrp.PredictRoi(Matrix(1, 2)), "before FitWithCalibration");
  EXPECT_DEATH(rdrp.PredictIntervals(Matrix(1, 2)),
               "before FitWithCalibration");
}

TEST(CoreGuardsTest, CalibrationFormSizesMustMatch) {
  std::vector<double> roi = {0.5, 0.6};
  std::vector<double> rq = {0.1};
  EXPECT_DEATH(
      core::ApplyCalibrationForm(core::CalibrationForm::kUpper, roi, rq),
      "");
}

TEST(CoreGuardsTest, ZeroMarginRestoresPaperArgmax) {
  // With margin = 0 and clean synthetic signal, the selector must be able
  // to pick a non-none form (the paper's unguarded rule). Construct data
  // where 5c is unambiguously best: roi_hat is anti-informative on its
  // own, rq adds the missing signal.
  Rng rng(4);
  int n = 4000;
  RctDataset calib;
  calib.x = Matrix(n, 1);
  std::vector<double> roi_hat(AsSize(n)), rq(AsSize(n));
  for (int i = 0; i < n; ++i) {
    double true_roi = rng.Uniform(0.1, 0.9);
    roi_hat[AsSize(i)] = 0.5;                  // useless point estimate
    rq[AsSize(i)] = true_roi;                  // all signal in the "interval" term
    int t = rng.Bernoulli(0.5) ? 1 : 0;
    calib.treatment.push_back(t);
    calib.y_cost.push_back(rng.Bernoulli(0.2 + t * 0.3) ? 1.0 : 0.0);
    calib.y_revenue.push_back(
        rng.Bernoulli(0.05 + t * true_roi * 0.3) ? 1.0 : 0.0);
  }
  core::CalibrationForm form =
      core::SelectCalibrationForm(roi_hat, rq, calib, /*margin=*/0.0);
  EXPECT_NE(form, core::CalibrationForm::kNone);
}

// ---------- abtest ----------

TEST(AbTestGuardsTest, RejectsBadConfig) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  class Dummy : public uplift::RoiModel {
   public:
    void Fit(const RctDataset&) override {}
    std::vector<double> PredictRoi(const Matrix& x) const override {
      return std::vector<double>(AsSize(x.rows()), 0.5);
    }
    std::string name() const override { return "dummy"; }
  };
  Dummy model;
  abtest::AbTestConfig config;
  config.budget_fraction = 0.0;
  EXPECT_DEATH(abtest::RunAbTest(generator, false, model, model, config),
               "");
  config.budget_fraction = 0.1;
  config.num_days = 0;
  EXPECT_DEATH(abtest::RunAbTest(generator, false, model, model, config),
               "");
}

}  // namespace
}  // namespace roicl
