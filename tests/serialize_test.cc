#include "nn/serialize.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "core/drp_model.h"
#include "core/rdrp.h"
#include "synth/synthetic_generator.h"

namespace roicl {
namespace {

TEST(MlpSerializeTest, RoundTripIsBitExact) {
  Rng rng(1);
  nn::Mlp net = nn::Mlp::MakeMlp(4, {8, 5}, 2, nn::ActivationKind::kElu,
                                 /*dropout_rate=*/0.3, &rng);
  std::stringstream stream;
  ASSERT_TRUE(nn::SaveMlp(net, stream).ok());
  StatusOr<nn::Mlp> loaded = nn::LoadMlp(stream);
  ASSERT_TRUE(loaded.ok());

  Matrix input(3, 4);
  Rng data_rng(2);
  for (double& v : input.data()) v = data_rng.Normal();
  Matrix a = net.Forward(input, nn::Mode::kInfer, nullptr);
  Matrix b = loaded.value().Forward(input, nn::Mode::kInfer, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
  // Layer structure survives too (dense + act + dropout twice + head).
  EXPECT_EQ(loaded.value().num_layers(), net.num_layers());
}

TEST(MlpSerializeTest, RejectsGarbage) {
  std::stringstream bad("not-a-model at all");
  EXPECT_FALSE(nn::LoadMlp(bad).ok());
  std::stringstream truncated("roicl-mlp-v1\n2\ndense 3 2\n1 1 0.5\n");
  EXPECT_FALSE(nn::LoadMlp(truncated).ok());
}

TEST(MlpSerializeTest, FileRoundTrip) {
  Rng rng(3);
  nn::Mlp net = nn::Mlp::MakeMlp(2, {4}, 1, nn::ActivationKind::kTanh, 0.0,
                                 &rng);
  std::string path = ::testing::TempDir() + "/roicl_mlp.txt";
  ASSERT_TRUE(nn::SaveMlpToFile(net, path).ok());
  StatusOr<nn::Mlp> loaded = nn::LoadMlpFromFile(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());
  EXPECT_FALSE(nn::LoadMlpFromFile(path).ok());  // deleted -> IO error
}

class ModelSerializeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    generator_ = new synth::SyntheticGenerator(synth::CriteoSynthConfig());
    Rng rng(4);
    train_ = new RctDataset(generator_->Generate(3000, false, &rng));
    calib_ = new RctDataset(generator_->Generate(1000, false, &rng));
    test_ = new RctDataset(generator_->Generate(500, false, &rng));
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete train_;
    delete calib_;
    delete test_;
  }
  static synth::SyntheticGenerator* generator_;
  static RctDataset* train_;
  static RctDataset* calib_;
  static RctDataset* test_;
};

synth::SyntheticGenerator* ModelSerializeTest::generator_ = nullptr;
RctDataset* ModelSerializeTest::train_ = nullptr;
RctDataset* ModelSerializeTest::calib_ = nullptr;
RctDataset* ModelSerializeTest::test_ = nullptr;

TEST_F(ModelSerializeTest, DrpRoundTripPredictionsIdentical) {
  core::DrpConfig config;
  config.train.epochs = 8;
  config.restarts = 1;
  core::DrpModel model(config);
  model.Fit(*train_);

  std::stringstream stream;
  ASSERT_TRUE(model.Save(stream).ok());
  StatusOr<core::DrpModel> loaded = core::DrpModel::Load(stream, config);
  ASSERT_TRUE(loaded.ok());

  std::vector<double> a = model.PredictRoi(test_->x);
  std::vector<double> b = loaded.value().PredictRoi(test_->x);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);

  // MC dropout is seed-deterministic, so it round-trips as well.
  core::McDropoutStats mc_a = model.PredictMcRoi(test_->x, 10, 9);
  core::McDropoutStats mc_b = loaded.value().PredictMcRoi(test_->x, 10, 9);
  EXPECT_EQ(mc_a.mean, mc_b.mean);
  EXPECT_EQ(mc_a.stddev, mc_b.stddev);
}

TEST_F(ModelSerializeTest, DrpSaveRequiresFit) {
  core::DrpModel model((core::DrpConfig()));
  std::stringstream stream;
  EXPECT_EQ(model.Save(stream).code(), StatusCode::kFailedPrecondition);
}

TEST_F(ModelSerializeTest, RdrpRoundTripKeepsCalibration) {
  core::RdrpConfig config;
  config.drp.train.epochs = 8;
  config.drp.restarts = 1;
  config.mc_passes = 10;
  core::RdrpModel model(config);
  model.FitWithCalibration(*train_, *calib_);

  std::string path = ::testing::TempDir() + "/roicl_rdrp.txt";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  StatusOr<core::RdrpModel> loaded =
      core::RdrpModel::LoadFromFile(path, config);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok());

  EXPECT_DOUBLE_EQ(loaded.value().q_hat(), model.q_hat());
  EXPECT_DOUBLE_EQ(loaded.value().roi_star(), model.roi_star());
  EXPECT_EQ(loaded.value().selected_form(), model.selected_form());

  std::vector<double> a = model.PredictRoi(test_->x);
  std::vector<double> b = loaded.value().PredictRoi(test_->x);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);

  std::vector<metrics::Interval> ia = model.PredictIntervals(test_->x);
  std::vector<metrics::Interval> ib =
      loaded.value().PredictIntervals(test_->x);
  for (size_t i = 0; i < ia.size(); ++i) {
    EXPECT_DOUBLE_EQ(ia[i].lo, ib[i].lo);
    EXPECT_DOUBLE_EQ(ia[i].hi, ib[i].hi);
  }
}

TEST_F(ModelSerializeTest, RdrpLoadRejectsDrpBlob) {
  core::DrpConfig config;
  config.train.epochs = 3;
  config.restarts = 1;
  core::DrpModel drp(config);
  drp.Fit(*train_);
  std::stringstream stream;
  ASSERT_TRUE(drp.Save(stream).ok());
  EXPECT_FALSE(core::RdrpModel::Load(stream).ok());
}

}  // namespace
}  // namespace roicl
