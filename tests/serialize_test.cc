#include "nn/serialize.h"

#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/drp_model.h"
#include "core/rdrp.h"
#include "synth/synthetic_generator.h"

namespace roicl {
namespace {

TEST(MlpSerializeTest, RoundTripIsBitExact) {
  Rng rng(1);
  nn::Mlp net = nn::Mlp::MakeMlp(4, {8, 5}, 2, nn::ActivationKind::kElu,
                                 /*dropout_rate=*/0.3, &rng);
  std::stringstream stream;
  ASSERT_TRUE(nn::SaveMlp(net, stream).ok());
  StatusOr<nn::Mlp> loaded = nn::LoadMlp(stream);
  ASSERT_TRUE(loaded.ok());

  Matrix input(3, 4);
  Rng data_rng(2);
  for (double& v : input.data()) v = data_rng.Normal();
  Matrix a = net.Forward(input, nn::Mode::kInfer, nullptr);
  Matrix b = loaded.value().Forward(input, nn::Mode::kInfer, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
  // Layer structure survives too (dense + act + dropout twice + head).
  EXPECT_EQ(loaded.value().num_layers(), net.num_layers());
}

TEST(MlpSerializeTest, RejectsGarbage) {
  std::stringstream bad("not-a-model at all");
  EXPECT_FALSE(nn::LoadMlp(bad).ok());
  std::stringstream truncated("roicl-mlp-v1\n2\ndense 3 2\n1 1 0.5\n");
  EXPECT_FALSE(nn::LoadMlp(truncated).ok());
}

TEST(MlpSerializeTest, FileRoundTrip) {
  Rng rng(3);
  nn::Mlp net = nn::Mlp::MakeMlp(2, {4}, 1, nn::ActivationKind::kTanh, 0.0,
                                 &rng);
  std::string path = ::testing::TempDir() + "/roicl_mlp.txt";
  ASSERT_TRUE(nn::SaveMlpToFile(net, path).ok());
  StatusOr<nn::Mlp> loaded = nn::LoadMlpFromFile(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());
  EXPECT_FALSE(nn::LoadMlpFromFile(path).ok());  // deleted -> IO error
}

class ModelSerializeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    generator_ = new synth::SyntheticGenerator(synth::CriteoSynthConfig());
    Rng rng(4);
    train_ = new RctDataset(generator_->Generate(3000, false, &rng));
    calib_ = new RctDataset(generator_->Generate(1000, false, &rng));
    test_ = new RctDataset(generator_->Generate(500, false, &rng));
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete train_;
    delete calib_;
    delete test_;
  }
  static synth::SyntheticGenerator* generator_;
  static RctDataset* train_;
  static RctDataset* calib_;
  static RctDataset* test_;
};

synth::SyntheticGenerator* ModelSerializeTest::generator_ = nullptr;
RctDataset* ModelSerializeTest::train_ = nullptr;
RctDataset* ModelSerializeTest::calib_ = nullptr;
RctDataset* ModelSerializeTest::test_ = nullptr;

TEST_F(ModelSerializeTest, DrpRoundTripPredictionsIdentical) {
  core::DrpConfig config;
  config.train.epochs = 8;
  config.restarts = 1;
  core::DrpModel model(config);
  model.Fit(*train_);

  std::stringstream stream;
  ASSERT_TRUE(model.Save(stream).ok());
  StatusOr<core::DrpModel> loaded = core::DrpModel::Load(stream, config);
  ASSERT_TRUE(loaded.ok());

  std::vector<double> a = model.PredictRoi(test_->x);
  std::vector<double> b = loaded.value().PredictRoi(test_->x);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);

  // MC dropout is seed-deterministic, so it round-trips as well.
  core::McDropoutStats mc_a = model.PredictMcRoi(test_->x, 10, 9);
  core::McDropoutStats mc_b = loaded.value().PredictMcRoi(test_->x, 10, 9);
  EXPECT_EQ(mc_a.mean, mc_b.mean);
  EXPECT_EQ(mc_a.stddev, mc_b.stddev);
}

TEST_F(ModelSerializeTest, DrpSaveRequiresFit) {
  core::DrpModel model((core::DrpConfig()));
  std::stringstream stream;
  EXPECT_EQ(model.Save(stream).code(), StatusCode::kFailedPrecondition);
}

TEST_F(ModelSerializeTest, RdrpRoundTripKeepsCalibration) {
  core::RdrpConfig config;
  config.drp.train.epochs = 8;
  config.drp.restarts = 1;
  config.mc_passes = 10;
  core::RdrpModel model(config);
  model.FitWithCalibration(*train_, *calib_);

  std::string path = ::testing::TempDir() + "/roicl_rdrp.txt";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  StatusOr<core::RdrpModel> loaded =
      core::RdrpModel::LoadFromFile(path, config);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok());

  EXPECT_DOUBLE_EQ(loaded.value().q_hat(), model.q_hat());
  EXPECT_DOUBLE_EQ(loaded.value().roi_star(), model.roi_star());
  EXPECT_EQ(loaded.value().selected_form(), model.selected_form());

  std::vector<double> a = model.PredictRoi(test_->x);
  std::vector<double> b = loaded.value().PredictRoi(test_->x);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);

  std::vector<metrics::Interval> ia = model.PredictIntervals(test_->x);
  std::vector<metrics::Interval> ib =
      loaded.value().PredictIntervals(test_->x);
  for (size_t i = 0; i < ia.size(); ++i) {
    EXPECT_DOUBLE_EQ(ia[i].lo, ib[i].lo);
    EXPECT_DOUBLE_EQ(ia[i].hi, ib[i].hi);
  }
}

TEST_F(ModelSerializeTest, RdrpLoadRejectsDrpBlob) {
  core::DrpConfig config;
  config.train.epochs = 3;
  config.restarts = 1;
  core::DrpModel drp(config);
  drp.Fit(*train_);
  std::stringstream stream;
  ASSERT_TRUE(drp.Save(stream).ok());
  EXPECT_FALSE(core::RdrpModel::Load(stream).ok());
}

// ---- Corrupt-fixture matrix: one test per loader per failure class. ----
// Every loader must return a descriptive InvalidArgument — never crash,
// never return a half-initialized model.

void ExpectLoadMlpError(const std::string& blob,
                        const std::string& needle) {
  std::stringstream in(blob);
  StatusOr<nn::Mlp> loaded = nn::LoadMlp(in);
  ASSERT_FALSE(loaded.ok()) << "accepted: " << blob;
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find(needle), std::string::npos)
      << loaded.status().ToString();
}

TEST(MlpCorruptFixtures, EmptyStream) {
  ExpectLoadMlpError("", "empty or truncated");
}

TEST(MlpCorruptFixtures, VersionBumpIsCalledOut) {
  // A future writer's blob must fail with a version message, not a
  // confusing parse error halfway through.
  ExpectLoadMlpError("roicl-mlp-v2\n1\ndense 2 1\n",
                     "unsupported mlp format version");
}

TEST(MlpCorruptFixtures, ForeignMagic) {
  ExpectLoadMlpError("onnx-ir\n", "bad magic");
}

TEST(MlpCorruptFixtures, AbsurdLayerCount) {
  ExpectLoadMlpError("roicl-mlp-v1\n-3\n", "bad layer count");
}

TEST(MlpCorruptFixtures, TruncatedDenseParameters) {
  ExpectLoadMlpError("roicl-mlp-v1\n1\ndense 3 2\n2 3 0.5 0.5",
                     "truncated");
}

TEST(MlpCorruptFixtures, UnknownLayerKind) {
  ExpectLoadMlpError("roicl-mlp-v1\n1\nconv2d 3 3\n", "unknown layer kind");
}

/// Renders a fitted DRP model to text and hands the lines to `mutate`
/// so each test can corrupt exactly one aspect of a real blob.
std::string MutatedDrpBlob(
    const RctDataset& train,
    const std::function<std::string(const std::string&)>& mutate) {
  core::DrpConfig config;
  config.train.epochs = 2;
  config.restarts = 1;
  core::DrpModel model(config);
  model.Fit(train);
  std::stringstream stream;
  EXPECT_TRUE(model.Save(stream).ok());
  return mutate(stream.str());
}

void ExpectDrpLoadError(const std::string& blob,
                        const std::string& needle) {
  std::stringstream in(blob);
  StatusOr<core::DrpModel> loaded = core::DrpModel::Load(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find(needle), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(ModelSerializeTest, DrpCorruptFixtures) {
  ExpectDrpLoadError("", "empty or truncated drp model stream");
  ExpectDrpLoadError("roicl-drp-v7\n3 0 0 0 1 1 1\n",
                     "unsupported drp format version");
  ExpectDrpLoadError("roicl-mlp-v1\n0\n", "bad magic");
  ExpectDrpLoadError("roicl-drp-v1\n0\n", "bad feature dimension");
  ExpectDrpLoadError("roicl-drp-v1\n3 0.5 0.5\n", "truncated means");
  ExpectDrpLoadError("roicl-drp-v1\n2 0.5 0.5 1.0 0.0\n",
                     "non-positive stddev");
  // Truncation after a valid scaler line: the MLP header never arrives.
  ExpectDrpLoadError("roicl-drp-v1\n2 0.5 0.5 1.0 1.0\n",
                     "empty or truncated stream");
}

TEST_F(ModelSerializeTest, DrpLoadRejectsScalerNetworkWidthMismatch) {
  // Splice one extra (mean, std) pair into a real blob's scaler line:
  // the scaler then claims dim+1 features while the network's first
  // dense layer still consumes dim.
  std::string blob =
      MutatedDrpBlob(*train_, [](const std::string& text) {
        size_t magic_end = text.find('\n');
        size_t scaler_end = text.find('\n', magic_end + 1);
        std::string scaler =
            text.substr(magic_end + 1, scaler_end - magic_end - 1);
        std::istringstream fields(scaler);
        size_t dim = 0;
        fields >> dim;
        std::vector<std::string> moments;
        std::string token;
        while (fields >> token) moments.push_back(token);
        std::ostringstream rebuilt;
        rebuilt << dim + 1;
        // means, then an extra mean; stds, then an extra std.
        for (size_t i = 0; i < dim; ++i) rebuilt << ' ' << moments[i];
        rebuilt << " 0.0";
        for (size_t i = dim; i < 2 * dim; ++i) {
          rebuilt << ' ' << moments[i];
        }
        rebuilt << " 1.0";
        return text.substr(0, magic_end + 1) + rebuilt.str() +
               text.substr(scaler_end);
      });
  ExpectDrpLoadError(blob, "feature dimension mismatch");
}

TEST_F(ModelSerializeTest, RdrpCorruptFixtures) {
  auto expect_rdrp_error = [](const std::string& blob,
                              const std::string& needle) {
    std::stringstream in(blob);
    StatusOr<core::RdrpModel> loaded = core::RdrpModel::Load(in);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(loaded.status().message().find(needle), std::string::npos)
        << loaded.status().ToString();
  };
  expect_rdrp_error("", "empty or truncated rdrp model stream");
  expect_rdrp_error("roicl-rdrp-v9\n1.0 0.2 0\n",
                    "unsupported rdrp format version");
  expect_rdrp_error("roicl-drp-v1\n2 0 0 1 1\n", "bad magic");
  expect_rdrp_error("roicl-rdrp-v1\n1.0 0.2",  // truncated header line
                    "bad rDRP calibration header");
  expect_rdrp_error("roicl-rdrp-v1\n1.0 0.2 9\n",  // form out of range
                    "bad rDRP calibration header");
}

}  // namespace
}  // namespace roicl
