#include "core/drp_loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace roicl::core {
namespace {

/// Small RCT fixture with known tau_r / tau_c.
struct Fixture {
  std::vector<int> t;
  std::vector<double> yr, yc;
};

Fixture MakeFixture(int n, double roi, double tau_c, Rng* rng) {
  // Treated: cost Bernoulli(base + tau_c), revenue Bernoulli(base_r +
  // roi * tau_c). Control: just the bases.
  Fixture f;
  double base_c = 0.2, base_r = 0.05;
  for (int i = 0; i < n; ++i) {
    int t = rng->Bernoulli(0.5) ? 1 : 0;
    f.t.push_back(t);
    f.yc.push_back(rng->Bernoulli(base_c + t * tau_c) ? 1.0 : 0.0);
    f.yr.push_back(rng->Bernoulli(base_r + t * roi * tau_c) ? 1.0 : 0.0);
  }
  return f;
}

TEST(DrpLossTest, GradientMatchesFiniteDifference) {
  Rng rng(1);
  Fixture f = MakeFixture(64, 0.4, 0.3, &rng);
  DrpLoss loss(&f.t, &f.yr, &f.yc);

  Matrix preds(64, 1);
  for (int i = 0; i < 64; ++i) preds(i, 0) = rng.Normal();
  std::vector<int> index(64);
  for (int i = 0; i < 64; ++i) index[AsSize(i)] = i;

  Matrix grad;
  loss.Compute(preds, index, &grad);

  const double h = 1e-6;
  for (int i = 0; i < 64; i += 5) {
    Matrix plus = preds, minus = preds;
    plus(i, 0) += h;
    minus(i, 0) -= h;
    Matrix unused;
    double numeric = (loss.Compute(plus, index, &unused) -
                      loss.Compute(minus, index, &unused)) /
                     (2 * h);
    EXPECT_NEAR(grad(i, 0), numeric, 1e-6) << "sample " << i;
  }
}

TEST(DrpLossTest, StationaryPointIsRoi) {
  // With a shared logit s, the population loss derivative vanishes exactly
  // at sigmoid(s) = tau_r / tau_c.
  Rng rng(2);
  Fixture f = MakeFixture(200000, 0.45, 0.3, &rng);
  double tau_r = RctDataset::DiffInMeans(f.t, f.yr);
  double tau_c = RctDataset::DiffInMeans(f.t, f.yc);
  double s_star = Logit(tau_r / tau_c);
  EXPECT_NEAR(DrpPopulationLossDeriv(f.t, f.yr, f.yc, s_star), 0.0, 1e-9);
  // And the empirical ROI is close to the design value.
  EXPECT_NEAR(tau_r / tau_c, 0.45, 0.03);
}

TEST(DrpLossTest, PopulationLossIsConvex) {
  // L''(s) = tau_c * sigmoid'(s) > 0 under Assumption 4: check the
  // derivative is monotonically increasing on a grid.
  Rng rng(3);
  Fixture f = MakeFixture(50000, 0.5, 0.25, &rng);
  double prev = -1e9;
  for (double s = -6.0; s <= 6.0; s += 0.25) {
    double deriv = DrpPopulationLossDeriv(f.t, f.yr, f.yc, s);
    EXPECT_GE(deriv, prev - 1e-12) << "at s=" << s;
    prev = deriv;
  }
}

TEST(DrpLossTest, PopulationLossDerivMatchesFiniteDifference) {
  Rng rng(4);
  Fixture f = MakeFixture(1000, 0.3, 0.3, &rng);
  const double h = 1e-6;
  for (double s : {-2.0, 0.0, 1.0}) {
    double numeric = (DrpPopulationLoss(f.t, f.yr, f.yc, s + h) -
                      DrpPopulationLoss(f.t, f.yr, f.yc, s - h)) /
                     (2 * h);
    EXPECT_NEAR(DrpPopulationLossDeriv(f.t, f.yr, f.yc, s), numeric, 1e-6);
  }
}

TEST(DrpLossTest, HandlesSingleArmBatchGracefully) {
  std::vector<int> t = {1, 1, 1};
  std::vector<double> yr = {1, 0, 1};
  std::vector<double> yc = {1, 1, 0};
  DrpLoss loss(&t, &yr, &yc);
  Matrix preds(3, 1, 0.5);
  Matrix grad;
  double value = loss.Compute(preds, {0, 1, 2}, &grad);
  EXPECT_TRUE(std::isfinite(value));
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(std::isfinite(grad(i, 0)));
}

TEST(DrpLossTest, StableAtExtremeLogits) {
  std::vector<int> t = {1, 0};
  std::vector<double> yr = {1.0, 0.0};
  std::vector<double> yc = {1.0, 1.0};
  DrpLoss loss(&t, &yr, &yc);
  Matrix preds = {{500.0}, {-500.0}};
  Matrix grad;
  double value = loss.Compute(preds, {0, 1}, &grad);
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_TRUE(std::isfinite(grad(0, 0)));
  EXPECT_TRUE(std::isfinite(grad(1, 0)));
}

}  // namespace
}  // namespace roicl::core
