#!/bin/bash
# Observability-surface tests for the roicl CLI: parent-directory creation
# for the export flags (and exit 2 naming flag + path when creation is
# impossible), the Prometheus text exposition with exemplars, the
# load-replay subcommand's JSON report against the committed SLO spec,
# and a mid-serve SIGTERM flushing a metrics summary that still carries
# the serve.* histograms (exit 128+15). Run by ctest with the build dir
# as argument.
set -euo pipefail
BUILD_DIR="$1"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
CLI="$BUILD_DIR/tools/roicl"

$CLI generate --dataset criteo --n 1200 --seed 1 --out $WORK/train.csv
$CLI generate --dataset criteo --n 400 --seed 2 --out $WORK/calib.csv
$CLI generate --dataset criteo --n 2000 --seed 3 --out $WORK/stream.csv
$CLI train --method rdrp --train $WORK/train.csv --calib $WORK/calib.csv \
    --epochs 3 --restarts 1 --save-pipeline $WORK/m.pipeline

# --metrics-out / --metrics-prom / --trace-out create missing parent
# directories instead of failing at exit (after the work is done).
$CLI evaluate --pipeline $WORK/m.pipeline --data $WORK/calib.csv \
    --metrics-out $WORK/deep/a/b/metrics.json \
    --metrics-prom $WORK/deep/c/metrics.prom \
    --trace-out $WORK/deep/d/trace.json > /dev/null
[ -s $WORK/deep/a/b/metrics.json ]
[ -s $WORK/deep/c/metrics.prom ]
[ -s $WORK/deep/d/trace.json ]
grep -q '"counters"' $WORK/deep/a/b/metrics.json
grep -q '# TYPE' $WORK/deep/c/metrics.prom

# An uncreatable parent (nested under a regular file) exits 2 up front,
# naming the flag and the path — before any training/scoring runs.
touch $WORK/blocker
rc=0
$CLI evaluate --pipeline $WORK/m.pipeline --data $WORK/calib.csv \
    --metrics-out $WORK/blocker/sub/metrics.json 2>$WORK/err.txt || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "expected exit 2 for uncreatable --metrics-out parent, got $rc"
  exit 1
fi
grep -q "cannot create parent directory for --metrics-out" $WORK/err.txt
grep -qF "$WORK/blocker/sub/metrics.json" $WORK/err.txt
rc=0
$CLI evaluate --pipeline $WORK/m.pipeline --data $WORK/calib.csv \
    --trace-out $WORK/blocker/sub/trace.json 2>$WORK/err.txt || rc=$?
[ "$rc" -eq 2 ]
grep -q "cannot create parent directory for --trace-out" $WORK/err.txt

# load-replay: all five phases against the committed SLO spec, a
# machine-readable report, exemplars in the Prometheus exposition, and
# request flows in the trace.
$CLI load-replay --pipeline $WORK/m.pipeline --calib $WORK/calib.csv \
    --data $WORK/stream.csv --slo-spec $REPO_ROOT/configs/serving.slo \
    --out $WORK/load.json --metrics-prom $WORK/load.prom \
    --trace-out $WORK/load_trace.json > $WORK/load.txt
for phase in baseline burst deadline_heavy oversized swap_storm; do
  grep -q "\"phase\":\"$phase\"" $WORK/load.json
done
grep -q '"stages":' $WORK/load.json
grep -q '"slo":{' $WORK/load.json
grep -q '"slo_worst_state":"' $WORK/load.json
grep -q '"interrupted":false' $WORK/load.json
grep -q 'serve_stage_score_us_bucket' $WORK/load.prom
grep -q 'trace_id=' $WORK/load.prom
grep -q '"ph":"s"' $WORK/load_trace.json
grep -q '"ph":"f"' $WORK/load_trace.json
# Malformed spec: exit 2 naming the problem.
printf 'slo x kind=bogus target=0.1 short_window=1 long_window=2\n' \
    > $WORK/bad.slo
rc=0
$CLI load-replay --pipeline $WORK/m.pipeline --calib $WORK/calib.csv \
    --data $WORK/stream.csv --slo-spec $WORK/bad.slo 2>$WORK/err.txt \
    || rc=$?
[ "$rc" -eq 2 ]
grep -q "bad --slo-spec" $WORK/err.txt

# SIGTERM mid-serve: the run exits 128+15, reports the interruption, and
# the flushed metrics summary still carries the serve.* histograms.
$CLI generate --dataset criteo --n 300000 --seed 4 --out $WORK/big.csv
$CLI serve --pipeline $WORK/m.pipeline --data $WORK/big.csv \
    --out $WORK/big_scores.csv --request-rows 4 \
    2>$WORK/serve_err.txt >/dev/null & pid=$!
# Readiness-gated kill, not a fixed sleep: on a loaded machine (ctest -j)
# the 300k-row CSV load alone can outlast any fixed delay, and a SIGTERM
# before the first request completes flushes empty serve.* histograms.
# Wait for the service-up log line, then give the engine a moment to
# finish a few 4-row batches; 300k rows take far longer than that to
# drain, so the kill still lands mid-serve.
for _ in $(seq 1 600); do
  if grep -q "scoring service up" $WORK/serve_err.txt 2>/dev/null; then
    break
  fi
  kill -0 $pid 2>/dev/null || break
  sleep 0.2
done
sleep 2
kill -TERM $pid 2>/dev/null || true
rc=0
wait $pid || rc=$?
if [ "$rc" -ne 143 ]; then
  echo "expected exit 143 from SIGTERM during serve, got $rc"
  cat $WORK/serve_err.txt
  exit 1
fi
grep -q "serve interrupted by signal" $WORK/serve_err.txt
grep -q "metrics summary" $WORK/serve_err.txt
grep -q "serve.latency_micros.p50=" $WORK/serve_err.txt
grep -q "serve.stage.queue_us.p50=" $WORK/serve_err.txt
grep -q "serve.stage.score_us.p50=" $WORK/serve_err.txt

echo "CLI observability test passed"
