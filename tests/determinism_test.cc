// Determinism guarantees of the batched, ThreadPool-parallel prediction
// engine: every knob of nn::BatchOptions (batch size, thread count) is a
// throughput control only — the produced bits must never change. These
// tests pin that contract for the MC-dropout sweep, the rDRP pipeline,
// the forests, and the plain batched inference forward.

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "core/drp_model.h"
#include "core/mc_dropout.h"
#include "core/rdrp.h"
#include "monitor/drift.h"
#include "nn/batch_forward.h"
#include "nn/mlp.h"
#include "synth/synthetic_generator.h"
#include "trees/causal_forest.h"
#include "trees/random_forest.h"

namespace roicl {
namespace {

using core::McDropoutStats;
using core::RunMcDropout;
using nn::BatchOptions;

// The engine's threading policies: inline serial (1), the shared global
// pool (0), and a dedicated pool larger than this machine has cores (8).
const int kThreadSettings[] = {1, 0, 2, 8};

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng.Normal();
  }
  return m;
}

nn::Mlp MakeDropoutNet(int input_dim, uint64_t seed) {
  Rng rng(seed);
  return nn::Mlp::MakeMlp(input_dim, {16, 8}, /*output_dim=*/1,
                          nn::ActivationKind::kRelu, /*dropout_rate=*/0.3,
                          &rng);
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    // EXPECT_EQ on doubles is exact — bit-identity, not tolerance.
    EXPECT_EQ(a[i], b[i]) << what << " diverges at row " << i;
  }
}

TEST(McDropoutDeterminism, BitIdenticalAcrossThreadCounts) {
  nn::Mlp net = MakeDropoutNet(6, /*seed=*/21);
  Matrix x = RandomMatrix(237, 6, /*seed=*/22);

  BatchOptions serial;
  serial.batch_size = 64;
  serial.num_threads = 1;
  McDropoutStats reference =
      RunMcDropout(&net, x, /*passes=*/15, /*seed=*/99,
                   /*sigmoid_output=*/true, serial);

  for (int threads : kThreadSettings) {
    BatchOptions opts;
    opts.batch_size = 64;
    opts.num_threads = threads;
    McDropoutStats stats = RunMcDropout(&net, x, 15, 99, true, opts);
    ExpectBitIdentical(reference.mean, stats.mean,
                       "mean, threads=" + std::to_string(threads));
    ExpectBitIdentical(reference.stddev, stats.stddev,
                       "stddev, threads=" + std::to_string(threads));
  }
}

TEST(McDropoutDeterminism, BitIdenticalAcrossBatchSizes) {
  nn::Mlp net = MakeDropoutNet(5, /*seed=*/31);
  Matrix x = RandomMatrix(113, 5, /*seed=*/32);

  BatchOptions whole;
  whole.batch_size = x.rows();  // one block: the serial sweep
  whole.num_threads = 1;
  McDropoutStats reference = RunMcDropout(&net, x, 12, 7, true, whole);

  for (int batch_size : {1, 17, 64, 1000}) {
    BatchOptions opts;
    opts.batch_size = batch_size;
    opts.num_threads = 0;
    McDropoutStats stats = RunMcDropout(&net, x, 12, 7, true, opts);
    ExpectBitIdentical(reference.stddev, stats.stddev,
                       "batch_size=" + std::to_string(batch_size));
  }
}

TEST(McDropoutDeterminism, TwoSameSeedRunsIdentical) {
  nn::Mlp net = MakeDropoutNet(4, /*seed=*/41);
  Matrix x = RandomMatrix(80, 4, /*seed=*/42);
  BatchOptions opts;
  opts.batch_size = 32;
  opts.num_threads = 8;
  McDropoutStats first = RunMcDropout(&net, x, 10, 123, true, opts);
  McDropoutStats second = RunMcDropout(&net, x, 10, 123, true, opts);
  ExpectBitIdentical(first.mean, second.mean, "mean across reruns");
  ExpectBitIdentical(first.stddev, second.stddev, "stddev across reruns");
}

TEST(McDropoutDeterminism, DifferentSeedsActuallyDiffer) {
  // Guards against a degenerate engine that ignores the seed (which would
  // pass every identity test above).
  nn::Mlp net = MakeDropoutNet(4, /*seed=*/51);
  Matrix x = RandomMatrix(60, 4, /*seed=*/52);
  McDropoutStats a = RunMcDropout(&net, x, 10, 1, true);
  McDropoutStats b = RunMcDropout(&net, x, 10, 2, true);
  int differing = 0;
  for (size_t i = 0; i < a.mean.size(); ++i) {
    differing += (a.mean[i] != b.mean[i]);
  }
  EXPECT_GT(differing, 0);
}

TEST(BatchForwardDeterminism, MatchesPerRowForward) {
  nn::Mlp net = MakeDropoutNet(7, /*seed=*/61);
  Matrix x = RandomMatrix(151, 7, /*seed=*/62);

  // Per-row reference: forward each row alone in inference mode.
  std::vector<double> per_row(AsSize(x.rows()));
  for (int r = 0; r < x.rows(); ++r) {
    Matrix row(1, x.cols());
    for (int c = 0; c < x.cols(); ++c) row(0, c) = x(r, c);
    Matrix out = net.Forward(row, nn::Mode::kInfer, nullptr);
    per_row[AsSize(r)] = out(0, 0);
  }

  for (int threads : kThreadSettings) {
    BatchOptions opts;
    opts.batch_size = 40;
    opts.num_threads = threads;
    Matrix batched = nn::BatchedInferForward(&net, x, opts);
    ASSERT_EQ(batched.rows(), x.rows());
    ASSERT_EQ(batched.cols(), 1);
    for (int r = 0; r < x.rows(); ++r) {
      // ISSUE tolerance: batch forward must match the per-row forward to
      // 1e-12. (The dot products run in identical order, so in practice
      // the match is exact.)
      EXPECT_NEAR(batched(r, 0), per_row[AsSize(r)], 1e-12) << "row " << r;
    }
  }
}

TEST(BatchForwardDeterminism, MatchesSingleCallForwardBitwise) {
  nn::Mlp net = MakeDropoutNet(6, /*seed=*/71);
  Matrix x = RandomMatrix(97, 6, /*seed=*/72);
  Matrix whole = net.Forward(x, nn::Mode::kInfer, nullptr);
  for (int batch_size : {13, 32, 97, 500}) {
    BatchOptions opts;
    opts.batch_size = batch_size;
    opts.num_threads = 0;
    Matrix batched = nn::BatchedInferForward(&net, x, opts);
    for (int r = 0; r < x.rows(); ++r) {
      EXPECT_EQ(batched(r, 0), whole(r, 0))
          << "batch_size " << batch_size << ", row " << r;
    }
  }
}

class PipelineDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
    Rng rng(17);
    train_ = new RctDataset(generator.Generate(1200, false, &rng));
    calib_ = new RctDataset(generator.Generate(500, true, &rng));
    test_ = new RctDataset(generator.Generate(400, true, &rng));
  }
  static void TearDownTestSuite() {
    delete train_;
    delete calib_;
    delete test_;
  }

  static core::RdrpConfig FastConfig(int num_threads) {
    core::RdrpConfig config;
    config.drp.train.epochs = 8;
    config.drp.restarts = 1;
    config.mc_passes = 12;
    config.drp.predict.batch_size = 128;
    config.drp.predict.num_threads = num_threads;
    return config;
  }

  static RctDataset* train_;
  static RctDataset* calib_;
  static RctDataset* test_;
};

RctDataset* PipelineDeterminismTest::train_ = nullptr;
RctDataset* PipelineDeterminismTest::calib_ = nullptr;
RctDataset* PipelineDeterminismTest::test_ = nullptr;

TEST_F(PipelineDeterminismTest, RdrpPredictionsIdenticalAcrossThreads) {
  core::RdrpModel reference(FastConfig(/*num_threads=*/1));
  reference.FitWithCalibration(*train_, *calib_);
  std::vector<double> expected = reference.PredictRoi(test_->x);

  for (int threads : kThreadSettings) {
    core::RdrpModel model(FastConfig(threads));
    model.FitWithCalibration(*train_, *calib_);
    EXPECT_EQ(reference.q_hat(), model.q_hat())
        << "threads=" << threads;
    std::vector<double> scores = model.PredictRoi(test_->x);
    ExpectBitIdentical(expected, scores,
                       "rdrp scores, threads=" + std::to_string(threads));
  }
}

TEST_F(PipelineDeterminismTest, RdrpTwoSameSeedRunsIdentical) {
  core::RdrpModel first(FastConfig(/*num_threads=*/0));
  core::RdrpModel second(FastConfig(/*num_threads=*/0));
  first.FitWithCalibration(*train_, *calib_);
  second.FitWithCalibration(*train_, *calib_);
  EXPECT_EQ(first.q_hat(), second.q_hat());
  ExpectBitIdentical(first.PredictRoi(test_->x),
                     second.PredictRoi(test_->x), "rdrp reruns");
}

TEST(ForestDeterminism, BatchedPredictMatchesPerRow) {
  Matrix x = RandomMatrix(300, 4, /*seed=*/81);
  std::vector<double> y(AsSize(x.rows()));
  for (int r = 0; r < x.rows(); ++r) {
    y[AsSize(r)] = x(r, 0) + 0.5 * x(r, 1) * x(r, 2);
  }
  trees::ForestConfig config;
  config.num_trees = 20;
  trees::RandomForestRegressor forest(config);
  forest.Fit(x, y);

  std::vector<double> batched = forest.Predict(x);
  ASSERT_EQ(static_cast<int>(batched.size()), x.rows());
  for (int r = 0; r < x.rows(); ++r) {
    EXPECT_EQ(batched[AsSize(r)], forest.Predict(x.RowPtr(r))) << "row " << r;
  }

  // Two batched sweeps agree (the pool schedule is irrelevant).
  ExpectBitIdentical(batched, forest.Predict(x), "forest rerun");
}

// The monitor's drift state extends the engine's determinism contract:
// window counts are integer bins, so any partition of the stream across
// any number of threads, merged in any order, must commit the same bits
// and therefore the same PSI / binned-KS statistics.
TEST(MonitorDeterminism, DriftStateBitIdenticalAcrossPartitions) {
  Rng ref_rng(311);
  std::vector<double> reference(1000);
  for (double& v : reference) v = ref_rng.Normal();
  monitor::ReferenceDistribution dist =
      monitor::ReferenceDistribution::FromSamples(reference, 10);
  monitor::DriftDetector detector;
  int channel = detector.AddChannel("stream", dist);

  Rng stream_rng(312);
  std::vector<double> stream(5000);
  for (double& v : stream) v = 0.4 + 1.3 * stream_rng.Normal();

  monitor::WindowCounts serial = detector.MakeCounts(channel);
  for (double v : stream) detector.Accumulate(channel, v, &serial);
  double psi_serial = monitor::PopulationStabilityIndex(dist, serial);
  double ks_serial = monitor::BinnedKsStatistic(dist, serial);

  for (int threads : {2, 3, 8}) {
    // Contiguous chunks, one genuinely concurrent accumulator each.
    std::vector<monitor::WindowCounts> partials(
        AsSize(threads), detector.MakeCounts(channel));
    std::vector<std::thread> workers;
    workers.reserve(AsSize(threads));
    size_t chunk = (stream.size() + AsSize(threads) - 1) / AsSize(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        size_t begin = AsSize(t) * chunk;
        size_t end = std::min(stream.size(), begin + chunk);
        for (size_t i = begin; i < end; ++i) {
          detector.Accumulate(channel, stream[i], &partials[AsSize(t)]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();

    // Merge forward and backward; both must equal the serial bits.
    monitor::WindowCounts forward = detector.MakeCounts(channel);
    monitor::WindowCounts backward = detector.MakeCounts(channel);
    for (int t = 0; t < threads; ++t) {
      forward.Merge(partials[AsSize(t)]);
      backward.Merge(partials[AsSize(threads - 1 - t)]);
    }
    for (const monitor::WindowCounts* merged : {&forward, &backward}) {
      EXPECT_EQ(merged->counts, serial.counts) << "threads=" << threads;
      EXPECT_EQ(merged->total, serial.total) << "threads=" << threads;
      EXPECT_EQ(monitor::PopulationStabilityIndex(dist, *merged),
                psi_serial)
          << "threads=" << threads;
      EXPECT_EQ(monitor::BinnedKsStatistic(dist, *merged), ks_serial)
          << "threads=" << threads;
    }
  }
}

TEST(ForestDeterminism, CausalForestBatchedPredictMatchesPerRow) {
  Matrix x = RandomMatrix(260, 4, /*seed=*/91);
  Rng rng(92);
  std::vector<int> treatment(AsSize(x.rows()));
  std::vector<double> y(AsSize(x.rows()));
  for (int r = 0; r < x.rows(); ++r) {
    treatment[AsSize(r)] = rng.Bernoulli(0.5) ? 1 : 0;
    double tau = 0.4 * x(r, 0);
    y[AsSize(r)] = x(r, 1) + treatment[AsSize(r)] * tau + 0.1 * rng.Normal();
  }
  trees::CausalForestConfig config;
  config.num_trees = 16;
  trees::CausalForest forest(config);
  forest.Fit(x, treatment, y);

  std::vector<double> cate = forest.PredictCate(x);
  std::vector<double> stddev = forest.PredictCateStdDev(x);
  ASSERT_EQ(static_cast<int>(cate.size()), x.rows());
  ASSERT_EQ(static_cast<int>(stddev.size()), x.rows());
  for (int r = 0; r < x.rows(); ++r) {
    EXPECT_EQ(cate[AsSize(r)], forest.PredictCate(x.RowPtr(r))) << "row " << r;
    EXPECT_EQ(stddev[AsSize(r)], forest.PredictCateStdDev(x.RowPtr(r)))
        << "row " << r;
  }
}

}  // namespace
}  // namespace roicl
