#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/stats.h"

namespace roicl {
namespace {

TEST(SplitMix64Test, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  uint64_t first_a = a.Next();
  EXPECT_EQ(first_a, b.Next());
  EXPECT_NE(first_a, c.Next());
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(RngTest, StreamsAreIndependent) {
  Rng a(123, 0), b(123, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.NextU32() == b.NextU32());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitGivesIndependentChild) {
  Rng parent(9);
  Rng child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.NextU32() == child.NextU32());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) counts[rng.UniformInt(10)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.1, 0.01);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, BernoulliClampsProbability) {
  Rng rng(29);
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, ExponentialMean) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(37);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) counts[AsSize(rng.Categorical(weights))]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(kDraws), 0.6, 0.01);
}

TEST(RngTest, PoissonMean) {
  Rng rng(41);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(static_cast<double>(rng.Poisson(4.0)));
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
  EXPECT_NEAR(stats.variance(), 4.0, 0.2);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(43);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(53);
  std::vector<int> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, PermutationIsBijection) {
  Rng rng(59);
  std::vector<int> perm = rng.Permutation(50);
  std::sort(perm.begin(), perm.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(perm[AsSize(i)], i);
}

TEST(RngTest, PermutationUniformFirstElement) {
  Rng rng(61);
  std::vector<int> first_counts(5, 0);
  for (int i = 0; i < 20000; ++i) first_counts[AsSize(rng.Permutation(5)[0])]++;
  for (int c : first_counts) {
    EXPECT_NEAR(c / 20000.0, 0.2, 0.02);
  }
}

}  // namespace
}  // namespace roicl
