#include "core/cqr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "metrics/coverage.h"

namespace roicl::core {
namespace {

/// Heteroscedastic regression data: y = sin(2 x) + (0.1 + 0.4|x|) * noise.
void MakeData(int n, uint64_t seed, Matrix* x, std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 1);
  y->resize(AsSize(n));
  for (int i = 0; i < n; ++i) {
    double xi = rng.Uniform(-2.0, 2.0);
    (*x)(i, 0) = xi;
    (*y)[AsSize(i)] =
        std::sin(2.0 * xi) + (0.1 + 0.4 * std::fabs(xi)) * rng.Normal();
  }
}

CqrConfig FastConfig(double alpha = 0.1) {
  CqrConfig config;
  config.alpha = alpha;
  config.train.epochs = 60;
  config.train.learning_rate = 5e-3;
  return config;
}

TEST(PinballPairLossTest, GradientMatchesFiniteDifference) {
  std::vector<double> targets = {0.5, -1.0, 2.0};
  PinballPairLoss loss(&targets, 0.05, 0.95);
  Matrix preds = {{0.2, 1.0}, {-0.5, 0.3}, {1.5, 2.5}};
  Matrix grad;
  loss.Compute(preds, {0, 1, 2}, &grad);
  const double h = 1e-6;
  for (int i = 0; i < 3; ++i) {
    for (int c = 0; c < 2; ++c) {
      Matrix plus = preds, minus = preds;
      plus(i, c) += h;
      minus(i, c) -= h;
      Matrix unused;
      double numeric = (loss.Compute(plus, {0, 1, 2}, &unused) -
                        loss.Compute(minus, {0, 1, 2}, &unused)) /
                       (2 * h);
      EXPECT_NEAR(grad(i, c), numeric, 1e-6) << i << "," << c;
    }
  }
}

TEST(PinballPairLossTest, AsymmetricPenalty) {
  // For the 0.9 quantile, under-prediction costs 9x over-prediction.
  std::vector<double> targets = {1.0};
  PinballPairLoss loss(&targets, 0.1, 0.9);
  Matrix under = {{1.0, 0.0}};  // hi head under-predicts by 1
  Matrix over = {{1.0, 2.0}};   // hi head over-predicts by 1
  Matrix grad;
  double loss_under = loss.Compute(under, {0}, &grad);
  double loss_over = loss.Compute(over, {0}, &grad);
  EXPECT_NEAR(loss_under / loss_over, 9.0, 1e-9);
}

class CqrCoverage : public ::testing::TestWithParam<double> {};

TEST_P(CqrCoverage, ConformalizedIntervalsCover) {
  double alpha = GetParam();
  Matrix x_train, x_calib, x_test;
  std::vector<double> y_train, y_calib, y_test;
  MakeData(4000, 1, &x_train, &y_train);
  MakeData(1500, 2, &x_calib, &y_calib);
  MakeData(3000, 3, &x_test, &y_test);

  CqrModel model(FastConfig(alpha));
  model.Fit(x_train, y_train);
  model.Calibrate(x_calib, y_calib);
  std::vector<metrics::Interval> intervals = model.PredictIntervals(x_test);
  metrics::CoverageReport report =
      metrics::EvaluateCoverage(intervals, y_test);
  double slack = 3.0 * std::sqrt(alpha * (1 - alpha) / 1500.0) + 0.01;
  EXPECT_GE(report.coverage, 1.0 - alpha - slack) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, CqrCoverage,
                         ::testing::Values(0.05, 0.1, 0.3));

TEST(CqrTest, IntervalsAdaptToHeteroscedasticity) {
  Matrix x_train, x_calib;
  std::vector<double> y_train, y_calib;
  MakeData(5000, 4, &x_train, &y_train);
  MakeData(1500, 5, &x_calib, &y_calib);
  CqrModel model(FastConfig());
  model.Fit(x_train, y_train);
  model.Calibrate(x_calib, y_calib);

  // Noise scale grows with |x|: intervals at |x| = 1.8 should be wider
  // than at x = 0.
  Matrix near_zero(50, 1, 0.0);
  Matrix far(50, 1, 1.8);
  double width_zero = model.PredictIntervals(near_zero)[0].width();
  double width_far = model.PredictIntervals(far)[0].width();
  EXPECT_GT(width_far, width_zero * 1.3);
}

TEST(CqrTest, CalibrationWidensWhenRawUndercovers) {
  Matrix x_train, x_calib;
  std::vector<double> y_train, y_calib;
  MakeData(2000, 6, &x_train, &y_train);
  MakeData(1000, 7, &x_calib, &y_calib);
  CqrConfig config = FastConfig();
  config.train.epochs = 10;  // deliberately undertrained quantile heads
  CqrModel model(config);
  model.Fit(x_train, y_train);
  model.Calibrate(x_calib, y_calib);
  // q_hat is finite; the conformalized band contains the raw band when
  // q_hat >= 0 and is narrower when raw over-covers (q_hat < 0).
  EXPECT_TRUE(std::isfinite(model.q_hat()));
  Matrix probe(1, 1, 0.5);
  metrics::Interval raw = model.PredictRawIntervals(probe)[0];
  metrics::Interval adjusted = model.PredictIntervals(probe)[0];
  EXPECT_NEAR(adjusted.width(), raw.width() + 2.0 * model.q_hat(), 1e-9);
}

TEST(CqrTest, GuardsBeforeFitAndCalibrate) {
  CqrModel model(FastConfig());
  Matrix x(1, 1);
  EXPECT_DEATH(model.PredictRawIntervals(x), "before Fit");
  std::vector<double> y = {1.0};
  Matrix x_train(50, 1);
  std::vector<double> y_train(50, 0.0);
  CqrConfig config = FastConfig();
  config.train.epochs = 1;
  CqrModel fitted(config);
  fitted.Fit(x_train, y_train);
  EXPECT_DEATH(fitted.PredictIntervals(x), "before Calibrate");
}

}  // namespace
}  // namespace roicl::core
