#include "common/annotated_mutex.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

// Behavior tests for the capability-annotated mutex layer. Two jobs:
// (1) prove the wrappers are functionally identical to the std primitives
// they replace — mutual exclusion, TryLock contention semantics, CondVar
// wakeups — including under TSan (this test is in run_tsan.sh); (2) pin
// the GCC no-op expansion: this file compiles in every build-matrix config
// with the annotations active only under clang, so a macro that stopped
// expanding cleanly would break the whole matrix, not just the TSA row.

namespace roicl {
namespace {

TEST(AnnotatedMutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;  // guarded by mu by convention (locals can't annotate)
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(AnnotatedMutexTest, TryLockFailsWhileHeldSucceedsAfterRelease) {
  Mutex mu;
  mu.Lock();
  // Another thread must observe the mutex as busy...
  bool acquired_while_held = true;
  std::thread prober([&mu, &acquired_while_held] {
    acquired_while_held = mu.TryLock();
    if (acquired_while_held) mu.Unlock();
  });
  prober.join();
  EXPECT_FALSE(acquired_while_held);
  mu.Unlock();
  // ...and as free after release.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(AnnotatedMutexTest, CondVarWakesWaiterOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = true;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(AnnotatedMutexTest, CondVarNotifyAllReleasesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woke = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++woke;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& thread : waiters) thread.join();
  EXPECT_EQ(woke, kWaiters);
}

TEST(AnnotatedMutexTest, WaitReacquiresBeforeReturning) {
  // The REQUIRES(mu) contract on Wait promises the mutex is held again
  // when it returns: a waiter that increments right after Wait must never
  // race the notifier's own locked increment.
  Mutex mu;
  CondVar cv;
  int phase = 0;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (phase != 1) cv.Wait(mu);
    phase = 2;  // still under mu — would be a TSan race otherwise
  });
  {
    MutexLock lock(mu);
    phase = 1;
  }
  cv.NotifyOne();
  waiter.join();
  MutexLock lock(mu);
  EXPECT_EQ(phase, 2);
}

}  // namespace
}  // namespace roicl
