#include "core/calibration.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "metrics/cost_curve.h"
#include "synth/synthetic_generator.h"

namespace roicl::core {
namespace {

TEST(CalibrationFormTest, NamesAreStable) {
  EXPECT_EQ(CalibrationFormName(CalibrationForm::kNone), "none");
  EXPECT_EQ(CalibrationFormName(CalibrationForm::kProduct), "5a");
  EXPECT_EQ(CalibrationFormName(CalibrationForm::kRatio), "5b");
  EXPECT_EQ(CalibrationFormName(CalibrationForm::kUpper), "5c");
  EXPECT_EQ(AllCalibrationForms().size(), 4u);
}

TEST(ApplyCalibrationFormTest, MatchesEquations) {
  std::vector<double> roi_hat = {0.5};
  std::vector<double> rq = {0.2};
  EXPECT_DOUBLE_EQ(
      ApplyCalibrationForm(CalibrationForm::kNone, roi_hat, rq)[0], 0.5);
  EXPECT_DOUBLE_EQ(
      ApplyCalibrationForm(CalibrationForm::kProduct, roi_hat, rq)[0],
      0.5 * 0.7);  // 5a
  EXPECT_DOUBLE_EQ(
      ApplyCalibrationForm(CalibrationForm::kRatio, roi_hat, rq)[0],
      2.5);  // 5b
  EXPECT_DOUBLE_EQ(
      ApplyCalibrationForm(CalibrationForm::kUpper, roi_hat, rq)[0],
      0.7);  // 5c
}

TEST(ApplyCalibrationFormTest, RatioFormHandlesZeroWidth) {
  std::vector<double> out = ApplyCalibrationForm(CalibrationForm::kRatio,
                                                 {0.5}, {0.0});
  EXPECT_TRUE(std::isfinite(out[0]));
}

TEST(ApplyCalibrationFormTest, UpperFormPreservesOrderForEqualWidths) {
  // With identical interval widths, 5c is a rank-preserving shift.
  std::vector<double> roi_hat = {0.1, 0.4, 0.2};
  std::vector<double> rq(3, 0.3);
  std::vector<double> out =
      ApplyCalibrationForm(CalibrationForm::kUpper, roi_hat, rq);
  EXPECT_LT(out[0], out[2]);
  EXPECT_LT(out[2], out[1]);
}

TEST(SelectCalibrationFormTest, SelectionMaximizesCalibrationAucc) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(3);
  RctDataset calib = generator.Generate(3000, false, &rng);

  // A noisy point estimate and an uncertainty that is informative: large
  // where the point estimate is corrupted.
  std::vector<double> roi_hat(AsSize(calib.n())), rq(AsSize(calib.n()));
  for (int i = 0; i < calib.n(); ++i) {
    double truth = calib.TrueRoi(i);
    bool corrupted = rng.Bernoulli(0.4);
    roi_hat[AsSize(i)] = corrupted ? rng.Uniform(0.0, 1.0) : truth;
    rq[AsSize(i)] = corrupted ? 0.5 + 0.2 * rng.Uniform() : 0.05 * rng.Uniform();
  }
  CalibrationForm best = SelectCalibrationForm(roi_hat, rq, calib);
  double best_aucc = metrics::Aucc(
      ApplyCalibrationForm(best, roi_hat, rq), calib);
  for (CalibrationForm form : AllCalibrationForms()) {
    double aucc =
        metrics::Aucc(ApplyCalibrationForm(form, roi_hat, rq), calib);
    EXPECT_GE(best_aucc, aucc - 1e-12)
        << "form " << CalibrationFormName(form);
  }
}

TEST(SelectCalibrationFormTest, NeverWorseThanRawOnSelectionSet) {
  // Because kNone is in the candidate set, the selected form's
  // calibration-set AUCC is >= the raw point estimate's.
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(4);
  RctDataset calib = generator.Generate(2000, false, &rng);
  std::vector<double> roi_hat(AsSize(calib.n())), rq(AsSize(calib.n()));
  for (int i = 0; i < calib.n(); ++i) {
    roi_hat[AsSize(i)] = rng.Uniform();
    rq[AsSize(i)] = rng.Uniform(0.0, 0.3);
  }
  CalibrationForm best = SelectCalibrationForm(roi_hat, rq, calib);
  EXPECT_GE(metrics::Aucc(ApplyCalibrationForm(best, roi_hat, rq), calib),
            metrics::Aucc(roi_hat, calib) - 1e-12);
}

}  // namespace
}  // namespace roicl::core
