#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "synth/synthetic_generator.h"
#include "uplift/causal_forest_cate.h"
#include "uplift/meta_learners.h"
#include "uplift/neural_cate.h"
#include "uplift/regressor.h"
#include "uplift/tpm.h"

namespace roicl::uplift {
namespace {

/// Linear-effect RCT: y = x0 + t * (1 + 2 * x1) + noise, so
/// tau(x) = 1 + 2 * x1.
void MakeLinearCausalData(int n, Matrix* x, std::vector<int>* t,
                          std::vector<double>* y, Rng* rng) {
  *x = Matrix(n, 2);
  t->resize(AsSize(n));
  y->resize(AsSize(n));
  for (int i = 0; i < n; ++i) {
    (*x)(i, 0) = rng->Normal();
    (*x)(i, 1) = rng->Normal();
    (*t)[AsSize(i)] = rng->Bernoulli(0.5) ? 1 : 0;
    (*y)[AsSize(i)] = (*x)(i, 0) + (*t)[AsSize(i)] * (1.0 + 2.0 * (*x)(i, 1)) +
              rng->Normal(0.0, 0.1);
  }
}

double CateMse(const CateModel& model, const Matrix& x) {
  std::vector<double> tau = model.PredictCate(x);
  double mse = 0.0;
  for (int i = 0; i < x.rows(); ++i) {
    double truth = 1.0 + 2.0 * x(i, 1);
    mse += (tau[AsSize(i)] - truth) * (tau[AsSize(i)] - truth);
  }
  return mse / x.rows();
}

TEST(RidgeRegressorTest, FitsLinearData) {
  Rng rng(1);
  Matrix x(200, 1);
  std::vector<double> y(200);
  for (int i = 0; i < 200; ++i) {
    x(i, 0) = rng.Normal();
    y[AsSize(i)] = 3.0 * x(i, 0) + 1.0;
  }
  RidgeRegressor ridge(1e-6);
  ridge.Fit(x, y);
  std::vector<double> pred = ridge.Predict(Matrix({{2.0}}));
  EXPECT_NEAR(pred[0], 7.0, 0.05);
}

TEST(ForestRegressorTest, FitsStepData) {
  Rng rng(2);
  Matrix x(800, 1);
  std::vector<double> y(800);
  for (int i = 0; i < 800; ++i) {
    x(i, 0) = rng.Normal();
    y[AsSize(i)] = x(i, 0) > 0 ? 1.0 : 0.0;
  }
  trees::ForestConfig config;
  config.num_trees = 20;
  ForestRegressor forest(config);
  forest.Fit(x, y);
  EXPECT_NEAR(forest.Predict(Matrix({{1.5}}))[0], 1.0, 0.2);
  EXPECT_NEAR(forest.Predict(Matrix({{-1.5}}))[0], 0.0, 0.2);
}

class MetaLearnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(3);
    MakeLinearCausalData(3000, &x_, &t_, &y_, &rng);
  }
  Matrix x_;
  std::vector<int> t_;
  std::vector<double> y_;
};

TEST_F(MetaLearnerTest, SLearnerRecoversLinearEffect) {
  // With a ridge base on [X, t], the S-learner can only capture a
  // *constant* effect; check the average effect is right.
  SLearner learner(MakeRidgeFactory(1e-4));
  learner.Fit(x_, t_, y_);
  std::vector<double> tau = learner.PredictCate(x_);
  EXPECT_NEAR(Mean(tau), 1.0, 0.1);  // E[1 + 2 x1] = 1
}

TEST_F(MetaLearnerTest, TLearnerRecoversHeterogeneousEffect) {
  TLearner learner(MakeRidgeFactory(1e-4));
  learner.Fit(x_, t_, y_);
  EXPECT_LT(CateMse(learner, x_), 0.05);
}

TEST_F(MetaLearnerTest, XLearnerRecoversHeterogeneousEffect) {
  XLearner learner(MakeRidgeFactory(1e-4));
  learner.Fit(x_, t_, y_);
  EXPECT_LT(CateMse(learner, x_), 0.05);
}

TEST_F(MetaLearnerTest, CausalForestCateAdaptsToHeterogeneity) {
  trees::CausalForestConfig config;
  config.num_trees = 30;
  CausalForestCate learner(config);
  learner.Fit(x_, t_, y_);
  std::vector<double> tau = learner.PredictCate(x_);
  // Forests approximate the linear effect in steps; require correlation.
  std::vector<double> truth(AsSize(x_.rows()));
  for (int i = 0; i < x_.rows(); ++i) truth[AsSize(i)] = 1.0 + 2.0 * x_(i, 1);
  EXPECT_GT(PearsonCorrelation(tau, truth), 0.8);
}

class NeuralCateParamTest
    : public ::testing::TestWithParam<NeuralCateKind> {};

TEST_P(NeuralCateParamTest, LearnsHeterogeneousEffectDirection) {
  Rng rng(4);
  Matrix x;
  std::vector<int> t;
  std::vector<double> y;
  MakeLinearCausalData(3000, &x, &t, &y, &rng);

  NeuralCateConfig config;
  config.train.epochs = 60;
  config.train.learning_rate = 3e-3;
  NeuralCate model(GetParam(), config);
  model.Fit(x, t, y);
  std::vector<double> tau = model.PredictCate(x);
  std::vector<double> truth(AsSize(x.rows()));
  for (int i = 0; i < x.rows(); ++i) truth[AsSize(i)] = 1.0 + 2.0 * x(i, 1);
  EXPECT_GT(PearsonCorrelation(tau, truth), 0.7)
      << "kind=" << static_cast<int>(GetParam());
  EXPECT_NEAR(Mean(tau), 1.0, 0.35);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, NeuralCateParamTest,
                         ::testing::Values(NeuralCateKind::kTarnet,
                                           NeuralCateKind::kDragonnet,
                                           NeuralCateKind::kOffsetnet,
                                           NeuralCateKind::kSnet),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case NeuralCateKind::kTarnet:
                               return "TARNet";
                             case NeuralCateKind::kDragonnet:
                               return "DragonNet";
                             case NeuralCateKind::kOffsetnet:
                               return "OffsetNet";
                             case NeuralCateKind::kSnet:
                               return "SNet";
                           }
                           return "?";
                         });

TEST(TpmRoiModelTest, RanksByRoiOnSyntheticRct) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(5);
  RctDataset train = generator.Generate(6000, false, &rng);
  RctDataset test = generator.Generate(2000, false, &rng);

  trees::ForestConfig forest;
  forest.num_trees = 25;
  TpmRoiModel tpm("TPM-SL", [forest] {
    return std::make_unique<SLearner>(MakeForestFactory(forest));
  });
  tpm.Fit(train);
  std::vector<double> roi = tpm.PredictRoi(test.x);
  ASSERT_EQ(static_cast<int>(roi.size()), test.n());

  std::vector<double> truth(AsSize(test.n()));
  for (int i = 0; i < test.n(); ++i) truth[AsSize(i)] = test.TrueRoi(i);
  EXPECT_GT(SpearmanCorrelation(roi, truth), 0.1)
      << "TPM ranking should beat random on synthetic data";
}

TEST(TpmRoiModelTest, NameAndUnfittedGuards) {
  TpmRoiModel tpm("TPM-XL", [] {
    return std::make_unique<XLearner>(MakeRidgeFactory());
  });
  EXPECT_EQ(tpm.name(), "TPM-XL");
  EXPECT_DEATH(tpm.PredictRoi(Matrix(1, 1)), "before Fit");
}

TEST(TpmRoiModelTest, CostFloorGuardsDivision) {
  // A CATE model that predicts zero cost uplift everywhere must not
  // produce inf/nan ROI.
  class ZeroCate : public CateModel {
   public:
    void Fit(const Matrix&, const std::vector<int>&,
             const std::vector<double>&) override {}
    std::vector<double> PredictCate(const Matrix& x) const override {
      return std::vector<double>(AsSize(x.rows()), 0.0);
    }
  };
  TpmRoiModel tpm("TPM-zero", [] { return std::make_unique<ZeroCate>(); },
                  /*cost_floor=*/1e-3);
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(6);
  RctDataset train = generator.Generate(200, false, &rng);
  tpm.Fit(train);
  for (double roi : tpm.PredictRoi(train.x)) {
    EXPECT_TRUE(std::isfinite(roi));
  }
}

}  // namespace
}  // namespace roicl::uplift
