// Failure-injection and robustness tests: malformed inputs must either be
// rejected with a Status (recoverable I/O) or abort loudly via
// ROICL_CHECK (programmer errors) — never produce silent garbage.

#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/conformal.h"
#include "core/drp_model.h"
#include "core/greedy.h"
#include "core/multi_treatment.h"
#include "data/csv.h"
#include "data/split.h"
#include "exp/table.h"
#include "metrics/cost_curve.h"
#include "synth/synthetic_generator.h"

namespace roicl {
namespace {

// ---------- CSV / Status error paths ----------

std::string WriteTempFile(const std::string& name,
                          const std::string& contents) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(CsvFailureTest, RaggedRowRejected) {
  std::string path = WriteTempFile(
      "ragged.csv", "f0,treatment,y_revenue,y_cost\n1.0,1,0.5\n");
  StatusOr<RctDataset> result = ReadDatasetCsv(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvFailureTest, EmptyFileRejected) {
  std::string path = WriteTempFile("empty.csv", "");
  EXPECT_FALSE(ReadDatasetCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvFailureTest, WriteToUnwritablePathFails) {
  RctDataset data;
  data.x = Matrix(1, 1);
  data.treatment = {1};
  data.y_revenue = {1.0};
  data.y_cost = {1.0};
  Status status = WriteDatasetCsv(data, "/nonexistent_dir/out.csv");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

// ---------- ROICL_CHECK death paths (programmer errors) ----------

TEST(CheckDeathTest, NonBinaryTreatmentAborts) {
  RctDataset data;
  data.x = Matrix(1, 1);
  data.treatment = {2};
  data.y_revenue = {1.0};
  data.y_cost = {1.0};
  EXPECT_DEATH(data.Validate(), "binary");
}

TEST(CheckDeathTest, MismatchedColumnsAbort) {
  RctDataset data;
  data.x = Matrix(2, 1);
  data.treatment = {0, 1};
  data.y_revenue = {1.0};  // wrong length
  data.y_cost = {1.0, 0.0};
  EXPECT_DEATH(data.Validate(), "length mismatch");
}

TEST(CheckDeathTest, DrpRequiresBothArms) {
  RctDataset data;
  data.x = Matrix(4, 2);
  data.treatment = {1, 1, 1, 1};  // control arm missing
  data.y_revenue = {1, 0, 1, 0};
  data.y_cost = {1, 1, 0, 0};
  core::DrpModel drp((core::DrpConfig()));
  EXPECT_DEATH(drp.Fit(data), "both RCT arms");
}

TEST(CheckDeathTest, GreedyRejectsNegativeCost) {
  EXPECT_DEATH(core::GreedyAllocate({0.5}, {-1.0}, 1.0), "negative cost");
}

TEST(CheckDeathTest, TableRowWidthMismatchAborts) {
  exp::TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

TEST(CheckDeathTest, ConformalRejectsInvalidAlpha) {
  std::vector<double> scores = {1.0, 2.0};
  EXPECT_DEATH(core::ConformalScoreQuantile(scores, 0.0), "alpha");
  EXPECT_DEATH(core::ConformalScoreQuantile(scores, 1.0), "alpha");
}

TEST(CheckDeathTest, MultiAllocatorRejectsRaggedInput) {
  std::vector<std::vector<double>> roi = {{0.5, 0.6}};
  std::vector<std::vector<double>> costs = {{1.0}};  // ragged
  EXPECT_DEATH(core::GreedyAllocateMulti(roi, costs, 1.0), "");
}

// ---------- Numerical robustness under degenerate data ----------

TEST(DegenerateDataTest, DrpSurvivesAllZeroOutcomes) {
  // No signal at all: training must not NaN out.
  RctDataset data;
  int n = 400;
  data.x = Matrix(n, 3);
  Rng rng(1);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 3; ++c) data.x(i, c) = rng.Normal();
    data.treatment.push_back(rng.Bernoulli(0.5) ? 1 : 0);
    data.y_revenue.push_back(0.0);
    data.y_cost.push_back(0.0);
  }
  core::DrpConfig config;
  config.train.epochs = 3;
  core::DrpModel drp(config);
  drp.Fit(data);
  for (double roi : drp.PredictRoi(data.x)) {
    EXPECT_TRUE(std::isfinite(roi));
  }
}

TEST(DegenerateDataTest, DrpSurvivesConstantFeatures) {
  RctDataset data;
  int n = 300;
  data.x = Matrix(n, 2, 3.0);  // all columns constant
  Rng rng(2);
  for (int i = 0; i < n; ++i) {
    data.treatment.push_back(i % 2);
    data.y_revenue.push_back(rng.Bernoulli(0.2) ? 1.0 : 0.0);
    data.y_cost.push_back(rng.Bernoulli(0.5) ? 1.0 : 0.0);
  }
  core::DrpConfig config;
  config.train.epochs = 3;
  core::DrpModel drp(config);
  drp.Fit(data);
  for (double roi : drp.PredictRoi(data.x)) {
    EXPECT_TRUE(std::isfinite(roi));
  }
}

TEST(DegenerateDataTest, AuccWithSingleArmPrefixes) {
  // The first half of the ranking is all-treated: prefixes with one arm
  // must contribute zeros, not NaNs.
  RctDataset data;
  int n = 100;
  data.x = Matrix(n, 1);
  std::vector<double> scores(AsSize(n));
  for (int i = 0; i < n; ++i) {
    data.treatment.push_back(i < 50 ? 1 : 0);
    data.y_revenue.push_back(i % 3 == 0 ? 1.0 : 0.0);
    data.y_cost.push_back(i % 2 == 0 ? 1.0 : 0.0);
    scores[AsSize(i)] = n - i;  // rank exactly in index order
  }
  double aucc = metrics::Aucc(scores, data);
  EXPECT_TRUE(std::isfinite(aucc));
}

TEST(DegenerateDataTest, SubsampleAtFullRateKeepsEverything) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(3);
  RctDataset data = generator.Generate(500, false, &rng);
  RctDataset same = Subsample(data, 1.0, &rng);
  EXPECT_EQ(same.n(), data.n());
}

// ---------- Metric invariances (properties) ----------

TEST(MetricPropertyTest, AuccInvariantToScoreShiftAndScale) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(4);
  RctDataset data = generator.Generate(3000, false, &rng);
  std::vector<double> scores(AsSize(data.n()));
  for (int i = 0; i < data.n(); ++i) scores[AsSize(i)] = data.TrueRoi(i);
  std::vector<double> affine(scores);
  for (double& s : affine) s = 7.0 * s - 3.0;
  EXPECT_DOUBLE_EQ(metrics::Aucc(scores, data),
                   metrics::Aucc(affine, data));
}

TEST(MetricPropertyTest, AuccInvariantToRowPermutation) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(5);
  RctDataset data = generator.Generate(2000, false, &rng);
  std::vector<double> scores(AsSize(data.n()));
  for (int i = 0; i < data.n(); ++i) scores[AsSize(i)] = data.TrueRoi(i);

  std::vector<int> perm = rng.Permutation(data.n());
  RctDataset shuffled = data.Subset(perm);
  std::vector<double> shuffled_scores(AsSize(data.n()));
  for (int i = 0; i < data.n(); ++i) shuffled_scores[AsSize(i)] = scores[AsSize(perm[AsSize(i)])];
  EXPECT_NEAR(metrics::Aucc(scores, data),
              metrics::Aucc(shuffled_scores, shuffled), 1e-9);
}

TEST(MetricPropertyTest, ConformalQuantileAlphaLimits) {
  std::vector<double> scores = {5.0, 1.0, 3.0, 2.0, 4.0};
  // alpha -> 0: rank exceeds n, +inf.
  EXPECT_TRUE(std::isinf(ConformalQuantile(scores, 0.01)));
  // alpha close to 1: the smallest score.
  EXPECT_DOUBLE_EQ(ConformalQuantile(scores, 0.99), 1.0);
}

}  // namespace
}  // namespace roicl
