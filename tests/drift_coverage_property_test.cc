// Property test for the monitoring subsystem's reason to exist: after a
// covariate shift, the *static* calibration-time q_hat loses its
// conformal coverage guarantee (the shifted population's scores are no
// longer exchangeable with the calibration scores), while the rolling
// recalibrator — fed a labeled feedback window from the shifted
// distribution — restores empirical coverage to >= 1 - alpha. Checked
// across >= 10 independent seeds end to end: train -> calibrate ->
// shift -> ServingMonitor::AddOutcomes -> MaybeRecalibrate -> evaluate
// on a held-out shifted set.

#include <cmath>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/conformal.h"
#include "core/roi_star.h"
#include "monitor/monitor.h"
#include "pipeline/pipeline.h"
#include "synth/shift.h"
#include "synth/synthetic_generator.h"

namespace roicl {
namespace {

constexpr double kAlpha = 0.1;
constexpr int kSeeds = 10;
// Tilt feature 4: across these fixed seeds it moves the covariate
// distribution hard (exp(2.5 x) importance resampling) while every
// 400-row shifted window keeps the positive average cost lift that
// Algorithm 2's labeled path requires (minimum 0.08 over the 10 seeds);
// tilting feature 0 instead flips the lift sign on several seeds and
// would silently punt every run to the ACI fallback.
constexpr double kShiftGamma = 2.5;
constexpr int kShiftFeature = 4;

RctDataset Gen(int n, uint64_t seed) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(seed);
  return generator.Generate(n, /*shifted=*/false, &rng);
}

struct SeedOutcome {
  double static_coverage = 0.0;  ///< frozen q_hat on shifted traffic
  double recal_coverage = 0.0;   ///< rolling q_hat on the same traffic
};

/// Fraction of `data`'s conformal intervals (at quantile `q_hat`)
/// containing the set's own roi* — the deployment coverage notion of
/// Definition 2, evaluated against the shifted population.
double CoverageAt(const pipeline::Pipeline& pipeline,
                  const RctDataset& data, double q_hat) {
  pipeline::RoiScorer::ConformalInputs inputs =
      pipeline.ConformalScoreInputs(data.x).value();
  double roi_star = core::BinarySearchRoiStar(data);
  std::vector<double> scores =
      core::ConformalScores(roi_star, inputs.roi_hat, inputs.r_hat);
  int covered = 0;
  for (double score : scores) covered += score <= q_hat;
  return static_cast<double>(covered) /
         static_cast<double>(scores.size());
}

SeedOutcome RunOnce(uint64_t seed) {
  pipeline::Hyperparams hp;
  hp.alpha = kAlpha;
  hp.neural_epochs = 6;
  hp.restarts = 1;
  hp.mc_passes = 8;
  hp.seed = seed;
  RctDataset train = Gen(600, seed);
  RctDataset calib = Gen(300, seed + 1);
  pipeline::Pipeline pipeline =
      std::move(pipeline::Pipeline::Train("rDRP", hp, train, &calib, {}))
          .value();
  double q_static = pipeline.conformal_quantile().value();

  // The shifted regime: a labeled feedback window the monitor learns
  // from, and a held-out evaluation set from the same shifted
  // distribution that neither path has seen.
  Rng rng(seed + 7);
  RctDataset base = Gen(1500, seed + 2);
  RctDataset feedback = synth::ResampleWithCovariateShift(
      base, kShiftFeature, kShiftGamma, 400, &rng);
  RctDataset eval = synth::ResampleWithCovariateShift(
      base, kShiftFeature, kShiftGamma, 500, &rng);

  SeedOutcome outcome;
  outcome.static_coverage = CoverageAt(pipeline, eval, q_static);

  monitor::MonitorOptions options;
  options.recalibrator.min_labeled = 100;
  options.recalibrator.max_window = 400;
  std::unique_ptr<monitor::ServingMonitor> monitor =
      std::move(monitor::ServingMonitor::FromCalibration(&pipeline, calib,
                                                         options))
          .value();
  monitor->BindQuantileSwap([&pipeline](double q_hat) {
    return pipeline.SetConformalQuantile(q_hat);
  });
  EXPECT_TRUE(monitor->AddOutcomes(feedback).ok());
  StatusOr<monitor::RecalibrationResult> recal =
      monitor->MaybeRecalibrate(/*force=*/true);
  EXPECT_TRUE(recal.ok()) << recal.status().ToString();
  EXPECT_TRUE(recal.value().performed);
  EXPECT_TRUE(recal.value().labeled)
      << "400 two-arm feedback samples must take the Algorithm 2 path";

  double q_recal = pipeline.conformal_quantile().value();
  EXPECT_EQ(q_recal, recal.value().q_hat_after) << "swap not applied";
  outcome.recal_coverage = CoverageAt(pipeline, eval, q_recal);
  return outcome;
}

TEST(DriftCoverageProperty, RollingRecalibrationRestoresCoverage) {
  std::vector<SeedOutcome> outcomes;
  outcomes.reserve(kSeeds);
  for (int s = 0; s < kSeeds; ++s) {
    SCOPED_TRACE("seed index " + std::to_string(s));
    outcomes.push_back(RunOnce(2000 + 131 * static_cast<uint64_t>(s)));
  }

  double static_mean = 0.0;
  double recal_mean = 0.0;
  for (const SeedOutcome& outcome : outcomes) {
    static_mean += outcome.static_coverage;
    recal_mean += outcome.recal_coverage;
  }
  static_mean /= kSeeds;
  recal_mean /= kSeeds;

  // Under the shift, the frozen quantile must have lost its nominal
  // level — that is the failure mode the monitor exists to repair.
  // (Measured with these fixed seeds: static 0.853, recalibrated 0.912.)
  EXPECT_LT(static_mean, 1.0 - kAlpha)
      << "shift did not break static coverage; property is vacuous";

  // The recalibrated quantile restores it. Margin: 3 sigma of the
  // pooled Binomial(kSeeds * 500, 1 - alpha) estimate plus 0.03 slack
  // for the feedback-window vs eval-set roi* mismatch (finite-sample
  // noise between two 400/500-row resamples).
  double binomial_sigma = std::sqrt(kAlpha * (1.0 - kAlpha) /
                                    static_cast<double>(kSeeds * 500));
  double threshold = (1.0 - kAlpha) - 3.0 * binomial_sigma - 0.03;
  EXPECT_GE(recal_mean, threshold)
      << "mean recalibrated coverage " << recal_mean << " below "
      << threshold;
  EXPECT_GT(recal_mean, static_mean)
      << "recalibration did not improve coverage under shift";

  // No individual seed may collapse after recalibration.
  for (size_t s = 0; s < outcomes.size(); ++s) {
    EXPECT_GE(outcomes[s].recal_coverage, 0.60) << "seed index " << s;
  }
}

}  // namespace
}  // namespace roicl
