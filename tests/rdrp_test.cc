#include "core/rdrp.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/dr_model.h"
#include "core/roi_star.h"
#include "metrics/cost_curve.h"
#include "synth/synthetic_generator.h"

namespace roicl::core {
namespace {

class RdrpTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    generator_ = new synth::SyntheticGenerator(synth::CriteoSynthConfig());
    Rng rng(31);
    train_ = new RctDataset(generator_->Generate(5000, false, &rng));
    calib_ = new RctDataset(generator_->Generate(1500, true, &rng));
    test_ = new RctDataset(generator_->Generate(2500, true, &rng));
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete train_;
    delete calib_;
    delete test_;
  }

  static RdrpConfig FastConfig() {
    RdrpConfig config;
    config.drp.train.epochs = 12;
    config.mc_passes = 20;
    return config;
  }

  static synth::SyntheticGenerator* generator_;
  static RctDataset* train_;
  static RctDataset* calib_;
  static RctDataset* test_;
};

synth::SyntheticGenerator* RdrpTest::generator_ = nullptr;
RctDataset* RdrpTest::train_ = nullptr;
RctDataset* RdrpTest::calib_ = nullptr;
RctDataset* RdrpTest::test_ = nullptr;

TEST_F(RdrpTest, PipelineProducesFiniteScores) {
  RdrpModel rdrp(FastConfig());
  rdrp.FitWithCalibration(*train_, *calib_);
  EXPECT_TRUE(rdrp.calibrated());
  EXPECT_GT(rdrp.q_hat(), 0.0);
  EXPECT_TRUE(std::isfinite(rdrp.q_hat()));
  EXPECT_GT(rdrp.roi_star(), 0.0);
  EXPECT_LT(rdrp.roi_star(), 1.0);
  std::vector<double> scores = rdrp.PredictRoi(test_->x);
  ASSERT_EQ(static_cast<int>(scores.size()), test_->n());
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST_F(RdrpTest, IntervalsCoverTestConvergencePoint) {
  RdrpModel rdrp(FastConfig());
  rdrp.FitWithCalibration(*train_, *calib_);
  std::vector<metrics::Interval> intervals =
      rdrp.PredictIntervals(test_->x);
  double roi_star_test = BinarySearchRoiStar(*test_);
  int covered = 0;
  for (const auto& interval : intervals) {
    covered += interval.Contains(roi_star_test);
  }
  double coverage =
      static_cast<double>(covered) / static_cast<double>(intervals.size());
  // Eq. 4 with alpha = 0.1, minus finite-sample slack: the calibration
  // roi* and the test roi* differ slightly, so allow a margin.
  EXPECT_GE(coverage, 0.82);
}

TEST_F(RdrpTest, WiderAlphaGivesNarrowerIntervals) {
  RdrpConfig config_tight = FastConfig();
  config_tight.alpha = 0.05;
  RdrpConfig config_loose = FastConfig();
  config_loose.alpha = 0.4;
  RdrpModel tight(config_tight), loose(config_loose);
  tight.FitWithCalibration(*train_, *calib_);
  loose.FitWithCalibration(*train_, *calib_);
  EXPECT_GT(tight.q_hat(), loose.q_hat());
  double width_tight = 0.0, width_loose = 0.0;
  for (const auto& iv : tight.PredictIntervals(test_->x)) {
    width_tight += iv.width();
  }
  for (const auto& iv : loose.PredictIntervals(test_->x)) {
    width_loose += iv.width();
  }
  EXPECT_GT(width_tight, width_loose);
}

TEST_F(RdrpTest, CalibrationSelectionAtLeastMatchesRawDrpOnCalibSet) {
  RdrpModel rdrp(FastConfig());
  rdrp.FitWithCalibration(*train_, *calib_);
  double raw = metrics::Aucc(rdrp.PredictPointRoi(calib_->x), *calib_);
  double calibrated = metrics::Aucc(rdrp.PredictRoi(calib_->x), *calib_);
  EXPECT_GE(calibrated, raw - 0.02)
      << "selected form must not collapse on the selection set";
}

TEST_F(RdrpTest, PlainFitFallsBackToTrainCalibration) {
  RdrpModel rdrp(FastConfig());
  rdrp.Fit(*train_);
  EXPECT_TRUE(rdrp.calibrated());
  std::vector<double> scores = rdrp.PredictRoi(test_->x);
  EXPECT_EQ(static_cast<int>(scores.size()), test_->n());
}

TEST_F(RdrpTest, BinnedRoiStarVariantRuns) {
  RdrpConfig config = FastConfig();
  config.binned_roi_star = true;
  config.roi_star_bins = 5;
  RdrpModel rdrp(config);
  rdrp.FitWithCalibration(*train_, *calib_);
  std::vector<double> scores = rdrp.PredictRoi(test_->x);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST_F(RdrpTest, TinyCalibrationSetStillFinite) {
  // n_calib = 5 with alpha = 0.1 forces the infinite-quantile fallback.
  RdrpModel rdrp(FastConfig());
  std::vector<int> few = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  RctDataset small = calib_->Subset(few);
  rdrp.FitWithCalibration(*train_, small);
  EXPECT_TRUE(std::isfinite(rdrp.q_hat()));
  for (double s : rdrp.PredictRoi(test_->x)) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST_F(RdrpTest, McCalibratedDrpSelectsAForm) {
  DrpConfig drp_config;
  drp_config.train.epochs = 12;
  McCalibratedModel model(std::make_unique<DrpModel>(drp_config),
                          /*mc_passes=*/20);
  model.FitWithCalibration(*train_, *calib_);
  EXPECT_EQ(model.name(), "DRP w/ MC");
  std::vector<double> scores = model.PredictRoi(test_->x);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST_F(RdrpTest, McCalibratedDrWorksToo) {
  DirectRankConfig dr_config;
  dr_config.train.epochs = 12;
  McCalibratedModel model(std::make_unique<DirectRankModel>(dr_config),
                          /*mc_passes=*/20);
  model.FitWithCalibration(*train_, *calib_);
  EXPECT_EQ(model.name(), "DR w/ MC");
  EXPECT_EQ(static_cast<int>(model.PredictRoi(test_->x).size()),
            test_->n());
}

}  // namespace
}  // namespace roicl::core
