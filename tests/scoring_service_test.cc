// ScoringService contract: N client threads submitting interleaved
// requests get exactly the scores a serial in-process pass produces,
// bit for bit. Also covers queue rejection, deadlines, and clean
// shutdown. This test runs under ThreadSanitizer (tools/run_tsan.sh) as
// the data-race gate for the serving layer.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "core/interval_backend.h"
#include "pipeline/pipeline.h"
#include "pipeline/service.h"
#include "synth/synthetic_generator.h"

namespace {

using namespace roicl;

RctDataset Gen(int n, uint64_t seed) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(seed);
  return generator.Generate(n, /*shifted=*/false, &rng);
}

pipeline::Pipeline TrainSmallDrp() {
  pipeline::Hyperparams hp;
  hp.neural_epochs = 3;
  hp.restarts = 1;
  RctDataset train = Gen(200, 7);
  return std::move(pipeline::Pipeline::Train("DRP", hp, train,
                                             /*calibration=*/nullptr, {}))
      .value();
}

TEST(ScoringService, InterleavedThreadsMatchSerialBitwise) {
  pipeline::Pipeline pipeline = TrainSmallDrp();

  // Distinct request payloads, each with its own serial reference score.
  constexpr int kRequests = 24;
  std::vector<Matrix> payloads;
  std::vector<std::vector<double>> expected;
  for (int i = 0; i < kRequests; ++i) {
    RctDataset data = Gen(17 + i % 5, 100 + static_cast<uint64_t>(i));
    expected.push_back(pipeline.Score(data.x).value());
    payloads.push_back(data.x);
  }

  pipeline::ServiceOptions options;
  options.engine.batch_size = 8;
  options.engine.num_threads = 2;
  pipeline::ScoringService service(std::move(pipeline), options);

  // N threads submit interleaved slices of the request list.
  constexpr int kThreads = 6;
  std::vector<std::future<StatusOr<std::vector<double>>>> futures(
      kRequests);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = t; i < kRequests; i += kThreads) {
        futures[AsSize(i)] = service.Submit(payloads[AsSize(i)]);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  for (int i = 0; i < kRequests; ++i) {
    StatusOr<std::vector<double>> result = futures[AsSize(i)].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value().size(), expected[AsSize(i)].size());
    for (size_t r = 0; r < expected[AsSize(i)].size(); ++r) {
      ASSERT_EQ(result.value()[r], expected[AsSize(i)][r])
          << "request " << i << " row " << r;
    }
  }
  EXPECT_EQ(service.requests_served(), static_cast<uint64_t>(kRequests));
}

TEST(ScoringService, BlockingScoreMatchesSubmit) {
  pipeline::Pipeline pipeline = TrainSmallDrp();
  RctDataset data = Gen(20, 55);
  std::vector<double> expected = pipeline.Score(data.x).value();

  pipeline::ScoringService service(std::move(pipeline), {});
  StatusOr<std::vector<double>> got = service.Score(data.x);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), expected);
}

TEST(ScoringService, RejectsWrongDimensionWithoutCrashing) {
  pipeline::ScoringService service(TrainSmallDrp(), {});
  int dim = service.pipeline().feature_dim();
  Matrix wrong(3, dim + 1, 0.25);
  StatusOr<std::vector<double>> result = service.Score(wrong);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("feature dimension mismatch"),
            std::string::npos)
      << result.status().ToString();
  // The service stays usable after a bad request.
  RctDataset data = Gen(5, 66);
  EXPECT_TRUE(service.Score(data.x).ok());
}

TEST(ScoringService, QueueOverflowRejectsInsteadOfBlocking) {
  pipeline::ServiceOptions options;
  options.max_queue = 1;
  pipeline::ScoringService service(TrainSmallDrp(), options);

  // A large blocker request keeps the dispatcher busy while the burst
  // lands, so the one-slot queue overflows. A fast machine could in
  // principle still drain between submits, so retry a bounded number of
  // times rather than assume timing.
  RctDataset blocker_data = Gen(60000, 76);
  RctDataset data = Gen(8, 77);
  constexpr int kBurst = 64;
  int ok = 0, rejected = 0;
  for (int attempt = 0; attempt < 5 && rejected == 0; ++attempt) {
    ok = rejected = 0;
    std::future<StatusOr<std::vector<double>>> blocker =
        service.Submit(blocker_data.x);
    std::vector<std::future<StatusOr<std::vector<double>>>> futures;
    futures.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      futures.push_back(service.Submit(data.x));
    }
    for (auto& future : futures) {
      StatusOr<std::vector<double>> result = future.get();
      if (result.ok()) {
        ++ok;
      } else {
        ASSERT_NE(result.status().message().find("queue full"),
                  std::string::npos)
            << result.status().ToString();
        ++rejected;
      }
    }
    ASSERT_TRUE(blocker.get().ok());
    ASSERT_EQ(ok + rejected, kBurst);
  }
  EXPECT_GE(rejected, 1);
  // Overflow rejections never wedge the service.
  EXPECT_TRUE(service.Score(data.x).ok());
}

TEST(ScoringService, ExpiredDeadlinesFailWithDescriptiveStatus) {
  pipeline::ScoringService service(TrainSmallDrp(), {});
  RctDataset data = Gen(32, 88);
  constexpr int kBurst = 32;
  std::vector<std::future<StatusOr<std::vector<double>>>> futures;
  futures.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    futures.push_back(service.Submit(data.x, /*deadline_micros=*/1));
  }
  for (auto& future : futures) {
    StatusOr<std::vector<double>> result = future.get();
    // Each request either made its (1us) deadline or failed with the
    // deadline status — never anything else, and never a hang.
    if (!result.ok()) {
      EXPECT_NE(result.status().message().find("deadline exceeded"),
                std::string::npos)
          << result.status().ToString();
    }
  }
}

TEST(ScoringService, ConcurrentSubmittersAndDestructorRaceCleanly) {
  // Shutdown while clients are still submitting: every future must
  // resolve (scored or "shut down"), nothing hangs, nothing races.
  RctDataset data = Gen(16, 99);
  std::vector<std::future<StatusOr<std::vector<double>>>> futures;
  std::mutex futures_mu;
  {
    pipeline::ScoringService service(TrainSmallDrp(), {});
    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back([&] {
        while (!stop.load()) {
          auto future = service.Submit(data.x);
          std::lock_guard<std::mutex> lock(futures_mu);
          futures.push_back(std::move(future));
          if (futures.size() > 64) return;
        }
      });
    }
    while (true) {
      {
        std::lock_guard<std::mutex> lock(futures_mu);
        if (futures.size() >= 32) break;
      }
      std::this_thread::yield();
    }
    stop.store(true);
    for (std::thread& client : clients) client.join();
    // Service destructor runs here with requests possibly still queued.
  }
  for (auto& future : futures) {
    StatusOr<std::vector<double>> result = future.get();
    if (!result.ok()) {
      EXPECT_NE(result.status().message().find("shut down"),
                std::string::npos)
          << result.status().ToString();
    }
  }
}

// The monitor's quantile swap races live traffic by design: q_hat is an
// atomic inside the rDRP scorer and its point score depends on it
// (Algorithm 4 folds q_hat * r_hat into the calibrated ROI). The
// no-tearing contract: every concurrently scored row must be bitwise
// equal to the score at SOME quantile that was actually written — a torn
// double would produce a score matching none of them. Exercised for
// every interval backend: the live quantile stays the model's single
// atomic scalar regardless of which backend calibrated it, which is
// exactly what makes the swap backend-agnostic. TSan-covered via
// run_tsan.sh.
void RunQuantileSwapTearTest(const std::string& backend_name) {
  pipeline::Hyperparams hp;
  hp.neural_epochs = 3;
  hp.restarts = 1;
  hp.mc_passes = 4;
  hp.interval_backend = backend_name;
  RctDataset train = Gen(200, 7);
  RctDataset calib = Gen(120, 8);
  pipeline::Pipeline pipeline =
      std::move(pipeline::Pipeline::Train("rDRP", hp, train, &calib, {}))
          .value();
  ASSERT_NE(pipeline.interval_backend(), nullptr);
  ASSERT_EQ(pipeline.interval_backend()->name(), backend_name);
  RctDataset data = Gen(24, 55);

  // Serial references: the score vector at the trained quantile and at
  // each value the swapper will write.
  constexpr int kSwaps = 16;
  const double q_initial = pipeline.conformal_quantile().value();
  std::vector<double> quantiles = {q_initial};
  for (int i = 1; i <= kSwaps; ++i) {
    quantiles.push_back(q_initial * (1.0 + 0.25 * i));
  }
  std::vector<std::vector<double>> references;
  for (double q : quantiles) {
    ASSERT_TRUE(pipeline.SetConformalQuantile(q).ok());
    references.push_back(pipeline.Score(data.x).value());
  }
  ASSERT_TRUE(pipeline.SetConformalQuantile(q_initial).ok());

  pipeline::ServiceOptions options;
  options.engine.batch_size = 8;
  options.engine.num_threads = 2;
  pipeline::ScoringService service(std::move(pipeline), options);

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        StatusOr<std::vector<double>> got = service.Score(data.x);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ASSERT_EQ(got.value().size(), references[0].size());
        for (size_t r = 0; r < got.value().size(); ++r) {
          bool matches_some_written_quantile = false;
          for (const std::vector<double>& reference : references) {
            matches_some_written_quantile |=
                got.value()[r] == reference[r];
          }
          EXPECT_TRUE(matches_some_written_quantile)
              << "row " << r << " scored " << got.value()[r]
              << " which matches no written quantile (torn q_hat?)";
        }
      }
    });
  }
  std::thread swapper([&] {
    for (size_t i = 1; i < quantiles.size(); ++i) {
      ASSERT_TRUE(service.SetConformalQuantile(quantiles[i]).ok());
      std::this_thread::yield();
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      StatusOr<double> q = service.pipeline().conformal_quantile();
      ASSERT_TRUE(q.ok());
      // Readers may only ever observe exactly-written values.
      EXPECT_NE(std::find(quantiles.begin(), quantiles.end(), q.value()),
                quantiles.end())
          << "observed quantile " << q.value() << " was never written";
      std::this_thread::yield();
    }
  });
  swapper.join();
  reader.join();
  for (std::thread& client : clients) client.join();
  EXPECT_DOUBLE_EQ(service.pipeline().conformal_quantile().value(),
                   quantiles.back());
}

TEST(ScoringService, QuantileSwapNeverTearsConcurrentSubmits) {
  for (const char* backend_name : core::kIntervalBackendNames) {
    SCOPED_TRACE(backend_name);
    RunQuantileSwapTearTest(backend_name);
  }
}

}  // namespace
