// Tests for the declarative SLO engine (src/obs/slo.h): spec parsing and
// validation, multi-window burn-rate state transitions across window
// boundaries (warm-up, WARN, BREACH, recovery), per-kind routing, and the
// JSON verdict. Window arithmetic is event-count based, so every scenario
// here is exactly reproducible.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"

namespace roicl::obs {
namespace {

SloSpec MakeSpec(std::string name, SloKind kind, double target,
                 size_t short_window, size_t long_window,
                 double warn_burn = 1.0, double breach_burn = 2.0) {
  SloSpec spec;
  spec.name = std::move(name);
  spec.kind = kind;
  spec.target = target;
  spec.short_window = short_window;
  spec.long_window = long_window;
  spec.warn_burn = warn_burn;
  spec.breach_burn = breach_burn;
  return spec;
}

// ---------------------------------------------------------------------------
// Parsing

TEST(SloParseTest, ParsesTheCanonicalGrammar) {
  const std::string text =
      "# comment line\n"
      "\n"
      "slo latency kind=p99_latency_us target=5000 short_window=32 "
      "long_window=256 warn_burn=1.0 breach_burn=2.0\n"
      "slo admit kind=reject_rate target=0.2 short_window=64 "
      "long_window=512  # trailing comment\n";
  std::vector<SloSpec> specs;
  std::string error;
  ASSERT_TRUE(ParseSloSpecs(text, &specs, &error)) << error;
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "latency");
  EXPECT_EQ(specs[0].kind, SloKind::kP99LatencyUs);
  EXPECT_DOUBLE_EQ(specs[0].target, 5000.0);
  EXPECT_EQ(specs[0].short_window, 32u);
  EXPECT_EQ(specs[0].long_window, 256u);
  EXPECT_DOUBLE_EQ(specs[0].warn_burn, 1.0);
  EXPECT_DOUBLE_EQ(specs[0].breach_burn, 2.0);
  EXPECT_EQ(specs[1].kind, SloKind::kRejectRate);
  // Burn thresholds default when omitted.
  EXPECT_DOUBLE_EQ(specs[1].warn_burn, 1.0);
  EXPECT_DOUBLE_EQ(specs[1].breach_burn, 2.0);
}

TEST(SloParseTest, RejectsMalformedSpecs) {
  struct Case {
    const char* text;
    const char* error_substring;
  };
  const Case cases[] = {
      {"sla x kind=reject_rate target=0.1 short_window=1 long_window=2\n",
       "expected 'slo'"},
      {"slo x kind=bogus target=0.1 short_window=1 long_window=2\n",
       "bad value for 'kind'"},
      {"slo x kind=reject_rate target=0.1 short_window=1 long_window=2 "
       "color=red\n",
       "unknown key"},
      {"slo x target=0.1 short_window=1 long_window=2\n", "missing kind"},
      {"slo x kind=reject_rate short_window=1 long_window=2\n",
       "missing target"},
      {"slo x kind=reject_rate target=1.5 short_window=1 long_window=2\n",
       "out of range"},
      {"slo x kind=coverage_floor target=1.0 short_window=1 long_window=2\n",
       "out of range"},
      {"slo x kind=p99_latency_us target=100 short_window=0 long_window=2\n",
       "short_window must be >= 1"},
      {"slo x kind=p99_latency_us target=100 short_window=8 long_window=8\n",
       "long_window must exceed short_window"},
      {"slo x kind=p99_latency_us target=100 short_window=1 long_window=2 "
       "warn_burn=3 breach_burn=2\n",
       "warn_burn <= breach_burn"},
      {"slo x kind=reject_rate target=0.1 short_window=1 long_window=2\n"
       "slo x kind=reject_rate target=0.1 short_window=1 long_window=2\n",
       "duplicate slo name"},
      {"# only a comment\n", "no slo records"},
  };
  for (const Case& c : cases) {
    std::vector<SloSpec> specs;
    std::string error;
    EXPECT_FALSE(ParseSloSpecs(c.text, &specs, &error)) << c.text;
    EXPECT_NE(error.find(c.error_substring), std::string::npos)
        << "error for {" << c.text << "} was: " << error;
  }
}

TEST(SloParseTest, LoadReportsMissingFile) {
  std::vector<SloSpec> specs;
  std::string error;
  EXPECT_FALSE(LoadSloSpecs("/nonexistent/specs.slo", &specs, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Burn-rate state machine

TEST(SloEngineTest, StaysOkDuringWarmupThenBreachesAtWindowBoundary) {
  // reject_rate target 0.1 => budget 0.1; an all-bad window burns at
  // 1 / 0.1 = 10x, far past breach_burn = 2.
  SloEngine engine({MakeSpec("adm", SloKind::kRejectRate, 0.1,
                             /*short_window=*/10, /*long_window=*/40)});
  for (int i = 0; i < 9; ++i) {
    engine.RecordAdmission(false);
    EXPECT_EQ(engine.StateOf("adm"), SloState::kOk)
        << "event " << i << ": must stay OK until short_window fills";
  }
  engine.RecordAdmission(false);  // 10th event: short window full
  EXPECT_EQ(engine.StateOf("adm"), SloState::kBreach);
  EXPECT_EQ(engine.WorstState(), SloState::kBreach);
}

TEST(SloEngineTest, RecoversWhenTheShortWindowDrainsOfBadEvents) {
  SloEngine engine({MakeSpec("adm", SloKind::kRejectRate, 0.1,
                             /*short_window=*/10, /*long_window=*/40)});
  for (int i = 0; i < 10; ++i) engine.RecordAdmission(false);
  ASSERT_EQ(engine.StateOf("adm"), SloState::kBreach);
  // Ten consecutive admits push every rejection out of the short window.
  // The long window still remembers them (long_burn = 10/20/0.1 = 5), but
  // the multi-window rule needs BOTH windows burning, so the state clears.
  for (int i = 0; i < 10; ++i) engine.RecordAdmission(true);
  EXPECT_EQ(engine.StateOf("adm"), SloState::kOk);
  // Recovery clears the live state but not the latched peak: replay
  // reports must remember that the run breached at some point.
  EXPECT_EQ(engine.WorstState(), SloState::kOk);
  EXPECT_EQ(engine.PeakWorstState(), SloState::kBreach);
  const std::string verdict = engine.VerdictJson();
  EXPECT_NE(verdict.find("\"state\":\"OK\""), std::string::npos) << verdict;
  EXPECT_NE(verdict.find("\"peak\":\"BREACH\""), std::string::npos);
  EXPECT_NE(verdict.find("\"worst\":\"OK\""), std::string::npos);
  EXPECT_NE(verdict.find("\"worst_peak\":\"BREACH\""), std::string::npos);
}

TEST(SloEngineTest, WarnsBetweenWarnAndBreachBurn) {
  // 1 bad in 10 at budget 0.1 burns at exactly warn_burn = 1.0, below
  // breach_burn = 2.0, in both windows simultaneously.
  SloEngine engine({MakeSpec("adm", SloKind::kRejectRate, 0.1,
                             /*short_window=*/10, /*long_window=*/40)});
  engine.RecordAdmission(false);
  for (int i = 0; i < 9; ++i) engine.RecordAdmission(true);
  EXPECT_EQ(engine.StateOf("adm"), SloState::kWarn);
}

TEST(SloEngineTest, LongWindowEvictionForgetsAncientHistory) {
  // drift_alert_budget target 0.5 => budget 0.5; all-triggered burns at
  // 2.0 = breach_burn. After long_window clean windows the triggered run
  // has been evicted entirely and both burns read 0.
  SloEngine engine({MakeSpec("drift", SloKind::kDriftAlertBudget, 0.5,
                             /*short_window=*/4, /*long_window=*/8)});
  for (int i = 0; i < 8; ++i) engine.RecordDriftWindow(true);
  ASSERT_EQ(engine.StateOf("drift"), SloState::kBreach);
  for (int i = 0; i < 4; ++i) engine.RecordDriftWindow(false);
  EXPECT_EQ(engine.StateOf("drift"), SloState::kOk)
      << "a clean short window must clear the state";
  for (int i = 0; i < 4; ++i) engine.RecordDriftWindow(false);
  EXPECT_EQ(engine.StateOf("drift"), SloState::kOk);
}

TEST(SloEngineTest, LatencyAndCoverageKindsRouteIndependently) {
  SloEngine engine({
      MakeSpec("lat", SloKind::kP99LatencyUs, 1000.0, /*short_window=*/4,
               /*long_window=*/8),
      MakeSpec("cov", SloKind::kCoverageFloor, 0.8, /*short_window=*/4,
               /*long_window=*/8),
  });
  // Latencies under target: good events for "lat" only.
  for (int i = 0; i < 4; ++i) engine.RecordLatency(500.0);
  EXPECT_EQ(engine.StateOf("lat"), SloState::kOk);
  // Slow tail: all-bad short window burns 1/0.01 = 100x the 1% budget.
  for (int i = 0; i < 4; ++i) engine.RecordLatency(2000.0);
  EXPECT_EQ(engine.StateOf("lat"), SloState::kBreach);
  // "cov" saw no events and must be untouched by the latency stream.
  EXPECT_EQ(engine.StateOf("cov"), SloState::kOk);
  for (int i = 0; i < 4; ++i) engine.RecordCoverage(false);
  EXPECT_EQ(engine.StateOf("cov"), SloState::kBreach);
  EXPECT_EQ(engine.WorstState(), SloState::kBreach);
  // Unknown names cannot breach.
  EXPECT_EQ(engine.StateOf("no_such_slo"), SloState::kOk);
}

TEST(SloEngineTest, TransitionsFeedTheMetricsRegistry) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t events_before = registry.GetCounter("slo.events")->value();
  const uint64_t breaches_before =
      registry.GetCounter("slo.breach_transitions")->value();
  SloEngine engine({MakeSpec("adm", SloKind::kRejectRate, 0.1,
                             /*short_window=*/4, /*long_window=*/8)});
  for (int i = 0; i < 8; ++i) engine.RecordAdmission(false);
  EXPECT_EQ(registry.GetCounter("slo.events")->value() - events_before, 8u);
  // One BREACH transition despite staying breached for several events.
  EXPECT_EQ(registry.GetCounter("slo.breach_transitions")->value() -
                breaches_before,
            1u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("slo.worst_state")->value(), 2.0);
}

TEST(SloEngineTest, VerdictJsonNamesEverySpecAndTheWorstState) {
  SloEngine engine({
      MakeSpec("adm", SloKind::kRejectRate, 0.1, /*short_window=*/4,
               /*long_window=*/8),
      MakeSpec("lat", SloKind::kP99LatencyUs, 1000.0, /*short_window=*/4,
               /*long_window=*/8),
  });
  for (int i = 0; i < 4; ++i) engine.RecordAdmission(false);
  const std::string verdict = engine.VerdictJson();
  EXPECT_NE(verdict.find("\"name\":\"adm\""), std::string::npos) << verdict;
  EXPECT_NE(verdict.find("\"kind\":\"reject_rate\""), std::string::npos);
  EXPECT_NE(verdict.find("\"state\":\"BREACH\""), std::string::npos);
  EXPECT_NE(verdict.find("\"name\":\"lat\""), std::string::npos);
  EXPECT_NE(verdict.find("\"kind\":\"p99_latency_us\""), std::string::npos);
  EXPECT_NE(verdict.find("\"state\":\"OK\""), std::string::npos);
  EXPECT_NE(verdict.find("\"events\":4"), std::string::npos);
  EXPECT_NE(verdict.find("\"bad_events\":4"), std::string::npos);
  EXPECT_NE(verdict.find("\"worst\":\"BREACH\""), std::string::npos);
}

TEST(SloEngineTest, CanonicalServingSpecParsesAndStartsOk) {
  // The committed serving config must stay loadable (the spec-file lint
  // checks the grammar statically; this checks the runtime parser agrees).
  std::vector<SloSpec> specs;
  std::string error;
  // ctest runs this from build/tests; direct runs may start anywhere in
  // the tree, so probe upward for the repo root.
  bool loaded = false;
  for (const char* path :
       {"configs/serving.slo", "../configs/serving.slo",
        "../../configs/serving.slo", "../../../configs/serving.slo"}) {
    if (LoadSloSpecs(path, &specs, &error)) {
      loaded = true;
      break;
    }
  }
  if (!loaded) GTEST_SKIP() << "configs/serving.slo not reachable from cwd";
  ASSERT_GE(specs.size(), 4u);
  SloEngine engine(std::move(specs));
  EXPECT_EQ(engine.WorstState(), SloState::kOk);
}

}  // namespace
}  // namespace roicl::obs
