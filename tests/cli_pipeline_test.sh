#!/bin/bash
# End-to-end test of the train-once/serve-many flow:
#   train --save-pipeline -> score --pipeline -> serve --pipeline
# The acceptance bar: `roicl serve` must score a held-out CSV bitwise
# identical to in-process prediction, at several engine settings.
# Run by ctest with the build dir as argument.
set -euo pipefail
BUILD_DIR="$1"
WORK=$(mktemp -d)
trap "rm -rf $WORK" EXIT
CLI="$BUILD_DIR/tools/roicl"

$CLI generate --dataset criteo --n 2000 --seed 1 --out $WORK/train.csv
$CLI generate --dataset criteo --n 600 --seed 2 --shifted \
    --out $WORK/calib.csv
$CLI generate --dataset criteo --n 777 --seed 3 --out $WORK/test.csv

# --- Point method: train once, then score and serve must agree. --------
$CLI train --method drp --train $WORK/train.csv --epochs 8 --restarts 1 \
    --save-pipeline $WORK/drp.pipe
$CLI score --pipeline $WORK/drp.pipe --data $WORK/test.csv \
    --out $WORK/inproc.csv
[ "$(head -1 $WORK/inproc.csv)" = "roi" ]
[ "$(wc -l < $WORK/inproc.csv)" -eq 778 ]
# Serving through the long-lived ScoringService is bitwise identical to
# in-process scoring, at different request splits and thread counts.
for opts in "--request-rows 64 --threads 1" \
            "--request-rows 100 --threads 4" \
            "--request-rows 1000 --threads 8"; do
  $CLI serve --pipeline $WORK/drp.pipe --data $WORK/test.csv \
      --out $WORK/served.csv $opts
  cmp $WORK/inproc.csv $WORK/served.csv \
    || { echo "serve output differs from in-process ($opts)"; exit 1; }
done

# --- Conformal method: pipeline carries calibration state. -------------
$CLI train --method rdrp --train $WORK/train.csv --calib $WORK/calib.csv \
    --epochs 8 --restarts 1 --save-pipeline $WORK/rdrp.pipe
$CLI score --pipeline $WORK/rdrp.pipe --data $WORK/test.csv \
    --out $WORK/rdrp_scores.csv
[ "$(head -1 $WORK/rdrp_scores.csv)" = "roi,interval_lo,interval_hi" ]
# Scoring the same artifact twice is deterministic.
$CLI score --pipeline $WORK/rdrp.pipe --data $WORK/test.csv \
    --out $WORK/rdrp_scores2.csv
cmp $WORK/rdrp_scores.csv $WORK/rdrp_scores2.csv
# serve returns point scores only. rDRP's calibrated score may consume
# MC-dropout std, whose RNG streams key on within-request row indices —
# so served bits are a function of the request split. Two guarantees to
# pin: (a) served as ONE request, the roi column is bitwise identical to
# score's; (b) any fixed split is bitwise reproducible run-to-run.
$CLI serve --pipeline $WORK/rdrp.pipe --data $WORK/test.csv \
    --out $WORK/rdrp_served.csv --request-rows 1000000
cut -d, -f1 $WORK/rdrp_scores.csv > $WORK/rdrp_roi_col.csv
cmp $WORK/rdrp_roi_col.csv $WORK/rdrp_served.csv \
    || { echo "single-request rDRP serve differs from score's roi"; exit 1; }
$CLI serve --pipeline $WORK/rdrp.pipe --data $WORK/test.csv \
    --out $WORK/rdrp_served77a.csv --request-rows 77 --threads 2
$CLI serve --pipeline $WORK/rdrp.pipe --data $WORK/test.csv \
    --out $WORK/rdrp_served77b.csv --request-rows 77 --threads 4
cmp $WORK/rdrp_served77a.csv $WORK/rdrp_served77b.csv \
    || { echo "chunked rDRP serve is not reproducible"; exit 1; }
# evaluate and allocate accept --pipeline too.
$CLI evaluate --pipeline $WORK/rdrp.pipe --data $WORK/test.csv \
  | grep -q "AUCC"
$CLI allocate --pipeline $WORK/rdrp.pipe --data $WORK/test.csv \
    --budget-frac 0.2 | grep -q "incr. revenue"

# --- Monitoring: replay a drifting stream through the served pipeline. -
# A shift injected mid-stream must be detected after the injection batch
# and answered with a q_hat recalibration; the summary reports detection
# latency and the three coverage regimes.
$CLI monitor-replay --pipeline $WORK/rdrp.pipe --calib $WORK/calib.csv \
    --data $WORK/test.csv --batch-rows 128 --num-batches 12 --shift-at 6 \
    --shift-gamma 3.0 --window-rows 256 --min-window 128 \
    --min-labeled 200 --seed 11 > $WORK/replay.txt
grep -q "shift injected       : batch 6" $WORK/replay.txt
grep -Eq "drift detected       : batch [0-9]+ \(latency [0-9]+ batches\)" \
    $WORK/replay.txt
grep -Eq "recalibrated         : batch [0-9]+" $WORK/replay.txt
# The coverage-regime table (pre-shift / shift->recal / post-recal) is
# printed for every run, one row per replayed backend.
grep -q "pre-shift  shift->recal  post-recal" $WORK/replay.txt
# The replay is seeded end to end: same flags, same bytes out.
$CLI monitor-replay --pipeline $WORK/rdrp.pipe --calib $WORK/calib.csv \
    --data $WORK/test.csv --batch-rows 128 --num-batches 12 --shift-at 6 \
    --shift-gamma 3.0 --window-rows 256 --min-window 128 \
    --min-labeled 200 --seed 11 > $WORK/replay2.txt
cmp $WORK/replay.txt $WORK/replay2.txt \
    || { echo "monitor-replay is not reproducible"; exit 1; }
# Replay validates its stream geometry up front.
if $CLI monitor-replay --pipeline $WORK/rdrp.pipe --calib $WORK/calib.csv \
    --data $WORK/test.csv --batch-rows 0 2>/dev/null; then
  echo "expected failure for bad --batch-rows"; exit 1
fi

# --- Interval backends: rebind at load, one replay row per backend. ----
# split -> weighted is a stateless rebind (shared Eq.(3) calibration
# state): serving the same artifact through the weighted backend is
# bitwise identical.
$CLI serve --pipeline $WORK/rdrp.pipe --data $WORK/test.csv \
    --out $WORK/rdrp_served_w.csv --request-rows 1000000 \
    --interval-backend weighted
cmp $WORK/rdrp_served.csv $WORK/rdrp_served_w.csv \
    || { echo "weighted rebind changed served scores"; exit 1; }
# cqr cannot be rebuilt from split scores; without a calibration dataset
# the rebind must refuse, not serve garbage intervals.
if $CLI serve --pipeline $WORK/rdrp.pipe --data $WORK/test.csv \
    --out $WORK/x.csv --interval-backend cqr 2>/dev/null; then
  echo "expected failure for stateless cqr rebind"; exit 1
fi
# Unknown backend names die in flag validation, listing the registry.
if $CLI serve --pipeline $WORK/rdrp.pipe --data $WORK/test.csv \
    --out $WORK/x.csv --interval-backend jackknife 2>$WORK/err.txt; then
  echo "expected failure for unknown interval backend"; exit 1
fi
grep -q "split" $WORK/err.txt
# Training bakes the chosen backend into the artifact: a cqr pipeline
# carries its quantile-head model through score.
$CLI train --method rdrp --train $WORK/train.csv --calib $WORK/calib.csv \
    --epochs 8 --restarts 1 --interval-backend cqr \
    --save-pipeline $WORK/cqr.pipe
$CLI score --pipeline $WORK/cqr.pipe --data $WORK/test.csv \
    --out $WORK/cqr_scores.csv
[ "$(head -1 $WORK/cqr_scores.csv)" = "roi,interval_lo,interval_hi" ]
# Per-backend replay smoke: `--interval-backend all` reruns the same
# seeded shifted stream once per registered backend and prints one
# coverage row each.
$CLI monitor-replay --pipeline $WORK/rdrp.pipe --calib $WORK/calib.csv \
    --data $WORK/test.csv --batch-rows 128 --num-batches 12 --shift-at 6 \
    --shift-gamma 3.0 --window-rows 256 --min-window 128 \
    --min-labeled 200 --seed 11 --interval-backend all \
    > $WORK/replay_all.txt
grep -Eq "^split " $WORK/replay_all.txt
grep -Eq "^weighted " $WORK/replay_all.txt
grep -Eq "^cqr " $WORK/replay_all.txt
$CLI monitor-replay --pipeline $WORK/rdrp.pipe --calib $WORK/calib.csv \
    --data $WORK/test.csv --batch-rows 128 --num-batches 12 --shift-at 6 \
    --shift-gamma 3.0 --window-rows 256 --min-window 128 \
    --min-labeled 200 --seed 11 --interval-backend all \
    > $WORK/replay_all2.txt
cmp $WORK/replay_all.txt $WORK/replay_all2.txt \
    || { echo "per-backend monitor-replay is not reproducible"; exit 1; }

# --- A non-neural method round-trips through the same artifact. --------
$CLI train --method tpm-sl --train $WORK/train.csv --forest-trees 5 \
    --save-pipeline $WORK/sl.pipe
$CLI score --pipeline $WORK/sl.pipe --data $WORK/test.csv \
    --out $WORK/sl1.csv
$CLI serve --pipeline $WORK/sl.pipe --data $WORK/test.csv \
    --out $WORK/sl2.csv --request-rows 50
cmp $WORK/sl1.csv $WORK/sl2.csv

# --- Error paths return non-zero with useful messages. -----------------
if $CLI train --method nonsense --train $WORK/train.csv \
    --save-pipeline $WORK/x 2>$WORK/err.txt; then
  echo "expected failure for unknown method"; exit 1
fi
grep -q "registered methods" $WORK/err.txt
grep -q "rDRP" $WORK/err.txt
if $CLI score --pipeline /nonexistent --data $WORK/test.csv \
    --out $WORK/x.csv; then
  echo "expected failure for missing pipeline"; exit 1
fi
if $CLI serve --pipeline $WORK/drp.pipe --data $WORK/calib.csv \
    --out $WORK/x.csv --request-rows 0; then
  echo "expected failure for bad --request-rows"; exit 1
fi
# A pipeline artifact is refused by the raw-blob loader with a clear
# error (and vice versa the manifest guards catch raw blobs).
if $CLI evaluate --model-type drp --model $WORK/drp.pipe \
    --data $WORK/test.csv; then
  echo "expected failure for pipeline fed to raw loader"; exit 1
fi

# `roicl methods` lists the registry (used by docs and scripts).
$CLI methods | grep -qx "rDRP"
[ "$($CLI methods | wc -l)" -ge 10 ]

echo "CLI pipeline test passed"
