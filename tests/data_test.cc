#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/scaler.h"
#include "data/split.h"

namespace roicl {
namespace {

RctDataset MakeToyDataset(int n, Rng* rng) {
  RctDataset dataset;
  dataset.x = Matrix(n, 3);
  dataset.treatment.resize(AsSize(n));
  dataset.y_revenue.resize(AsSize(n));
  dataset.y_cost.resize(AsSize(n));
  dataset.true_tau_r.resize(AsSize(n));
  dataset.true_tau_c.resize(AsSize(n));
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 3; ++c) dataset.x(i, c) = rng->Normal();
    dataset.treatment[AsSize(i)] = rng->Bernoulli(0.5) ? 1 : 0;
    dataset.y_revenue[AsSize(i)] = rng->Uniform();
    dataset.y_cost[AsSize(i)] = rng->Uniform();
    dataset.true_tau_r[AsSize(i)] = 0.1 + 0.1 * rng->Uniform();
    dataset.true_tau_c[AsSize(i)] = 0.3 + 0.1 * rng->Uniform();
  }
  return dataset;
}

TEST(RctDatasetTest, CountsAndValidate) {
  Rng rng(3);
  RctDataset dataset = MakeToyDataset(100, &rng);
  dataset.Validate();
  EXPECT_EQ(dataset.n(), 100);
  EXPECT_EQ(dataset.dim(), 3);
  EXPECT_EQ(dataset.NumTreated() + dataset.NumControl(), 100);
  EXPECT_TRUE(dataset.has_ground_truth());
}

TEST(RctDatasetTest, TrueRoiIsRatio) {
  Rng rng(4);
  RctDataset dataset = MakeToyDataset(10, &rng);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(dataset.TrueRoi(i),
                dataset.true_tau_r[AsSize(i)] / dataset.true_tau_c[AsSize(i)], 1e-12);
  }
}

TEST(RctDatasetTest, SubsetPreservesAlignment) {
  Rng rng(5);
  RctDataset dataset = MakeToyDataset(50, &rng);
  RctDataset subset = dataset.Subset({10, 20, 30});
  EXPECT_EQ(subset.n(), 3);
  EXPECT_EQ(subset.treatment[1], dataset.treatment[20]);
  EXPECT_DOUBLE_EQ(subset.y_revenue[2], dataset.y_revenue[30]);
  EXPECT_DOUBLE_EQ(subset.x(0, 2), dataset.x(10, 2));
  EXPECT_DOUBLE_EQ(subset.true_tau_c[0], dataset.true_tau_c[10]);
}

TEST(RctDatasetTest, DiffInMeans) {
  std::vector<int> t = {1, 1, 0, 0};
  std::vector<double> y = {3.0, 5.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(RctDataset::DiffInMeans(t, y), 3.0);
}

TEST(SplitDatasetTest, FractionsRespected) {
  Rng rng(6);
  RctDataset dataset = MakeToyDataset(1000, &rng);
  DatasetSplits splits =
      SplitDataset(dataset, {.train = 0.6, .calibration = 0.2, .test = 0.2},
                   &rng);
  EXPECT_EQ(splits.train.n(), 600);
  EXPECT_EQ(splits.calibration.n(), 200);
  EXPECT_EQ(splits.test.n(), 200);
}

TEST(SplitDatasetTest, PartitionsAreDisjoint) {
  Rng rng(7);
  RctDataset dataset = MakeToyDataset(300, &rng);
  // Tag rows through a feature to detect overlap after shuffling.
  for (int i = 0; i < 300; ++i) dataset.x(i, 0) = i;
  DatasetSplits splits =
      SplitDataset(dataset, {.train = 0.5, .calibration = 0.25, .test = 0.25},
                   &rng);
  std::set<int> seen;
  auto collect = [&](const RctDataset& d) {
    for (int i = 0; i < d.n(); ++i) {
      int tag = static_cast<int>(d.x(i, 0));
      EXPECT_TRUE(seen.insert(tag).second) << "duplicate row " << tag;
    }
  };
  collect(splits.train);
  collect(splits.calibration);
  collect(splits.test);
  EXPECT_EQ(seen.size(), 300u);
}

TEST(SubsampleTest, RateAndStratification) {
  Rng rng(8);
  RctDataset dataset = MakeToyDataset(2000, &rng);
  RctDataset sub = Subsample(dataset, 0.15, &rng);
  EXPECT_NEAR(sub.n(), 300, 3);
  // Both arms survive.
  EXPECT_GT(sub.NumTreated(), 0);
  EXPECT_GT(sub.NumControl(), 0);
  double full_rate =
      static_cast<double>(dataset.NumTreated()) / dataset.n();
  double sub_rate = static_cast<double>(sub.NumTreated()) / sub.n();
  EXPECT_NEAR(sub_rate, full_rate, 0.02);
}

TEST(TwoWaySplitTest, SplitsDisjointly) {
  Rng rng(9);
  RctDataset dataset = MakeToyDataset(100, &rng);
  RctDataset first, second;
  TwoWaySplit(dataset, 0.3, &rng, &first, &second);
  EXPECT_EQ(first.n(), 30);
  EXPECT_EQ(second.n(), 70);
}

TEST(StandardScalerTest, ZeroMeanUnitVariance) {
  Rng rng(10);
  Matrix x(500, 2);
  for (int r = 0; r < 500; ++r) {
    x(r, 0) = rng.Normal(5.0, 3.0);
    x(r, 1) = rng.Normal(-2.0, 0.5);
  }
  StandardScaler scaler;
  Matrix z = scaler.FitTransform(x);
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (int r = 0; r < 500; ++r) mean += z(r, c);
    mean /= 500;
    for (int r = 0; r < 500; ++r) var += (z(r, c) - mean) * (z(r, c) - mean);
    var /= 500;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(StandardScalerTest, ConstantColumnOnlyCentered) {
  Matrix x = {{3.0}, {3.0}, {3.0}};
  StandardScaler scaler;
  Matrix z = scaler.FitTransform(x);
  for (int r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(z(r, 0), 0.0);
}

TEST(StandardScalerTest, TransformUsesTrainStatistics) {
  Matrix train = {{0.0}, {2.0}};  // mean 1, std 1
  StandardScaler scaler;
  scaler.Fit(train);
  Matrix test = {{5.0}};
  EXPECT_DOUBLE_EQ(scaler.Transform(test)(0, 0), 4.0);
}

TEST(CsvTest, RoundTripWithGroundTruth) {
  Rng rng(11);
  RctDataset dataset = MakeToyDataset(40, &rng);
  dataset.segment.assign(40, 2);
  std::string path = ::testing::TempDir() + "/roicl_csv_test.csv";
  ASSERT_TRUE(WriteDatasetCsv(dataset, path).ok());
  StatusOr<RctDataset> loaded = ReadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  const RctDataset& got = loaded.value();
  EXPECT_EQ(got.n(), 40);
  EXPECT_EQ(got.dim(), 3);
  EXPECT_EQ(got.treatment, dataset.treatment);
  EXPECT_EQ(got.segment, dataset.segment);
  for (int i = 0; i < 40; ++i) {
    EXPECT_NEAR(got.x(i, 1), dataset.x(i, 1), 1e-9);
    EXPECT_NEAR(got.true_tau_r[AsSize(i)], dataset.true_tau_r[AsSize(i)], 1e-9);
  }
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadDatasetCsv("/nonexistent/nowhere.csv").status().code(),
            StatusCode::kIoError);
}

TEST(CsvTest, MissingRequiredColumnRejected) {
  std::string path = ::testing::TempDir() + "/roicl_csv_bad.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("f0,treatment,y_revenue\n1.0,1,0.5\n", f);
  fclose(f);
  EXPECT_EQ(ReadDatasetCsv(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace roicl
