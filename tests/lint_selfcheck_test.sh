#!/bin/bash
# Self-check for the custom lints under tools/: each one must FAIL on a
# deliberately-bad fixture tree and PASS on this repository. A lint that
# silently stopped matching (regex rot, directory rename) would otherwise
# keep reporting success forever — this test is the lint for the lints.
#
# Usage: lint_selfcheck_test.sh <repo root>
set -euo pipefail

repo_root=${1:?usage: lint_selfcheck_test.sh <repo root>}
tools="${repo_root}/tools"
fixture=$(mktemp -d "${TMPDIR:-/tmp}/roicl_lint_selfcheck.XXXXXX")
trap 'rm -rf "${fixture}"' EXIT

status=0

expect_fail() {
  local label=$1
  shift
  if "$@" >/dev/null 2>&1; then
    echo "FAIL: ${label}: lint passed on a bad fixture"
    status=1
  else
    echo "ok: ${label} rejects the bad fixture"
  fi
}

expect_pass() {
  local label=$1
  shift
  if "$@" >/dev/null 2>&1; then
    echo "ok: ${label} passes on the real repo"
  else
    echo "FAIL: ${label}: lint fails on the real repo"
    status=1
  fi
}

# --- Fixture: a miniature repo with one violation per lint. -------------
mkdir -p "${fixture}/src/core" "${fixture}/tools" "${fixture}/tests"

# check_determinism: ambient entropy in library code.
cat > "${fixture}/src/core/bad_rng.cc" <<'EOF'
#include <random>
int Draw() {
  std::random_device rd;
  return static_cast<int>(rd());
}
EOF

# check_include_guards: #pragma once, wrong guard name, and a
# header-scope using directive.
cat > "${fixture}/src/core/bad_header.h" <<'EOF'
#pragma once
using namespace std;
int F();
EOF

# check_scripts: missing strict mode and missing executable bit.
cat > "${fixture}/tools/sloppy.sh" <<'EOF'
#!/bin/bash
echo "no strict mode here"
EOF
chmod -x "${fixture}/tools/sloppy.sh"

# check_no_raw_io: a printf outside the sanctioned sinks.
cat > "${fixture}/src/core/bad_io.cc" <<'EOF'
#include <cstdio>
void Shout() { std::printf("raw stdout write\n"); }
EOF

# check_scripts, registration rule: a lint that exists but is wired into
# no CMakeLists. Regression test for a silent-abort bug where grep's
# exit-1-on-no-match killed the lint (under set -e -o pipefail) before
# it could report the unregistered script — so assert the message, not
# just the exit code.
cat > "${fixture}/tools/check_unwired.sh" <<'EOF'
#!/bin/bash
set -euo pipefail
exit 0
EOF
chmod +x "${fixture}/tools/check_unwired.sh"

# check_metric_names: a counter minted in library code (across a line
# break, to exercise the flattening) that the CLI never preregisters.
# The 12 preregistered decoys keep both extractions above the
# regex-rot count guards.
mkdir -p "${fixture}/src/obs" "${fixture}/tools"
cat > "${fixture}/src/obs/bad_metrics.cc" <<'EOF'
void Touch(MetricsRegistry& registry) {
  registry.GetCounter("decoy.metric_0");
  registry.GetCounter("decoy.metric_1");
  registry.GetCounter("decoy.metric_2");
  registry.GetCounter("decoy.metric_3");
  registry.GetCounter("decoy.metric_4");
  registry.GetCounter("decoy.metric_5");
  registry.GetCounter("decoy.metric_6");
  registry.GetCounter("decoy.metric_7");
  registry.GetCounter("decoy.metric_8");
  registry.GetGauge("decoy.metric_9");
  registry.GetGauge("decoy.metric_10");
  registry.GetHistogram(
      "monitor.unregistered_us", LatencyMicrosBuckets());
}
EOF
cat > "${fixture}/tools/roicl_cli.cc" <<'EOF'
void PreregisterStandardMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("decoy.metric_0");
  registry.GetCounter("decoy.metric_1");
  registry.GetCounter("decoy.metric_2");
  registry.GetCounter("decoy.metric_3");
  registry.GetCounter("decoy.metric_4");
  registry.GetCounter("decoy.metric_5");
  registry.GetCounter("decoy.metric_6");
  registry.GetCounter("decoy.metric_7");
  registry.GetCounter("decoy.metric_8");
  registry.GetGauge("decoy.metric_9");
  registry.GetGauge("decoy.metric_10");
  registry.GetHistogram("decoy.metric_11", LatencyMicrosBuckets());
}
EOF

# check_slo_specs: a spec with an unknown kind, a window inversion, and
# a duplicate record name.
mkdir -p "${fixture}/configs"
cat > "${fixture}/configs/bad.slo" <<'EOF'
slo latency kind=p99_latency_us target=5000 short_window=64 long_window=8
slo latency kind=made_up_kind target=0.5 short_window=8 long_window=64
EOF

# check_testnames: an orphan test source registered in no
# roicl_add_test(), next to enough registered tests (and one wired .sh
# harness) to clear the regex-rot count guards.
cat > "${fixture}/tests/orphan_test.cc" <<'EOF'
// Deliberately unregistered: compiles nowhere, runs never.
EOF
{
  for i in $(seq 0 10); do
    touch "${fixture}/tests/decoy${i}_test.cc"
    echo "roicl_add_test(decoy${i}_test decoy${i}_test.cc)"
  done
  echo "add_test(NAME wired_sh COMMAND bash wired_test.sh)"
} > "${fixture}/tests/CMakeLists.txt"
touch "${fixture}/tests/wired_test.sh"

# check_registry_complete: a Table-I name with no Register() call.
mkdir -p "${fixture}/src/exp" "${fixture}/src/pipeline"
cat > "${fixture}/src/exp/methods.h" <<'EOF'
inline constexpr std::array<const char*, 2> kTable1MethodNames = {
    "DRP", "rDRP"};
EOF
cat > "${fixture}/src/pipeline/builtin_scorers.cc" <<'EOF'
void RegisterBuiltinScorers(ScorerRegistry* registry) {
  registry->Register("DRP", MakeDrp);
  // rDRP registration deliberately missing.
}
EOF

# --- Each lint must reject its fixture... -------------------------------
expect_fail check_determinism bash "${tools}/check_determinism.sh" "${fixture}"
expect_fail check_include_guards \
  bash "${tools}/check_include_guards.sh" "${fixture}"
expect_fail check_scripts bash "${tools}/check_scripts.sh" "${fixture}"
expect_fail check_no_raw_io bash "${tools}/check_no_raw_io.sh" "${fixture}"
expect_fail check_registry_complete \
  bash "${tools}/check_registry_complete.sh" "${fixture}"
expect_fail check_metric_names \
  bash "${tools}/check_metric_names.sh" "${fixture}"
expect_fail check_slo_specs bash "${tools}/check_slo_specs.sh" "${fixture}"
expect_fail check_testnames bash "${tools}/check_testnames.sh" "${fixture}"

# The SLO lint pinpoints the violations, not just "failed".
slo_out=$(bash "${tools}/check_slo_specs.sh" "${fixture}" 2>&1 || true)
for needle in "unknown kind made_up_kind" "long_window must exceed" \
    "duplicate slo name latency"; do
  if grep -q "${needle}" <<<"${slo_out}"; then
    echo "ok: check_slo_specs reports '${needle}'"
  else
    echo "FAIL: check_slo_specs did not report '${needle}'"
    status=1
  fi
done

# The metric lint names the unregistered metric, not just "failed".
metric_out=$(bash "${tools}/check_metric_names.sh" "${fixture}" 2>&1 || true)
if grep -q "metric 'monitor.unregistered_us' used in src/" \
    <<<"${metric_out}"; then
  echo "ok: check_metric_names reports the unregistered metric"
else
  echo "FAIL: check_metric_names did not name the unregistered metric"
  status=1
fi

# The registry lint names the missing method, not just "failed".
registry_out=$(bash "${tools}/check_registry_complete.sh" "${fixture}" \
  2>&1 || true)
if grep -q "method 'rDRP' from kTable1MethodNames" <<<"${registry_out}"; then
  echo "ok: check_registry_complete reports the unregistered method"
else
  echo "FAIL: check_registry_complete did not name the missing method"
  status=1
fi

# The testname lint names the orphan source, not just "failed".
testnames_out=$(bash "${tools}/check_testnames.sh" "${fixture}" 2>&1 || true)
if grep -q "tests/orphan_test.cc: not registered" <<<"${testnames_out}"; then
  echo "ok: check_testnames reports the orphan test by name"
else
  echo "FAIL: check_testnames did not name the orphan test"
  status=1
fi

# Capture first: under pipefail the lint's expected exit 1 would mask
# grep's verdict in a direct pipeline.
check_scripts_out=$(bash "${tools}/check_scripts.sh" "${fixture}" 2>&1 || true)
if grep -q 'check_unwired.sh: referenced 0 times' \
    <<<"${check_scripts_out}"; then
  echo "ok: check_scripts reports the unregistered lint by name"
else
  echo "FAIL: check_scripts did not report the unregistered lint"
  status=1
fi

# --- ...and accept the real tree. ---------------------------------------
expect_pass check_determinism bash "${tools}/check_determinism.sh" "${repo_root}"
expect_pass check_include_guards \
  bash "${tools}/check_include_guards.sh" "${repo_root}"
expect_pass check_scripts bash "${tools}/check_scripts.sh" "${repo_root}"
expect_pass check_no_raw_io bash "${tools}/check_no_raw_io.sh" "${repo_root}"
expect_pass check_registry_complete \
  bash "${tools}/check_registry_complete.sh" "${repo_root}"
expect_pass check_metric_names \
  bash "${tools}/check_metric_names.sh" "${repo_root}"
expect_pass check_slo_specs bash "${tools}/check_slo_specs.sh" "${repo_root}"
expect_pass check_testnames bash "${tools}/check_testnames.sh" "${repo_root}"

exit "${status}"
