#!/bin/bash
# Self-check for the manifest-driven lints under tools/lint/: each one
# must FAIL on a deliberately-bad fixture tree and PASS on this
# repository. A lint that silently stopped matching (regex rot, directory
# rename) would otherwise keep reporting success forever — this test is
# the lint for the lints. Every invocation goes through
# tools/lint/run_lints.sh so the engine's spec resolution and name
# dispatch are exercised on both the bad and the good path.
#
# Usage: lint_selfcheck_test.sh <repo root>
set -euo pipefail

repo_root=${1:?usage: lint_selfcheck_test.sh <repo root>}
runner="${repo_root}/tools/lint/run_lints.sh"
fixture=$(mktemp -d "${TMPDIR:-/tmp}/roicl_lint_selfcheck.XXXXXX")
trap 'rm -rf "${fixture}"' EXIT

status=0

expect_fail() {
  local label=$1
  shift
  if "$@" >/dev/null 2>&1; then
    echo "FAIL: ${label}: lint passed on a bad fixture"
    status=1
  else
    echo "ok: ${label} rejects the bad fixture"
  fi
}

expect_pass() {
  local label=$1
  shift
  if "$@" >/dev/null 2>&1; then
    echo "ok: ${label} passes on the real repo"
  else
    echo "FAIL: ${label}: lint fails on the real repo"
    status=1
  fi
}

# --- Fixture: a miniature repo with one violation per lint. -------------
mkdir -p "${fixture}/src/core" "${fixture}/tools" "${fixture}/tests"

# check_determinism: ambient entropy in library code.
cat > "${fixture}/src/core/bad_rng.cc" <<'EOF'
#include <random>
int Draw() {
  std::random_device rd;
  return static_cast<int>(rd());
}
EOF

# check_include_guards: #pragma once, wrong guard name, and a
# header-scope using directive.
cat > "${fixture}/src/core/bad_header.h" <<'EOF'
#pragma once
using namespace std;
int F();
EOF

# check_scripts: missing strict mode and missing executable bit.
cat > "${fixture}/tools/sloppy.sh" <<'EOF'
#!/bin/bash
echo "no strict mode here"
EOF
chmod -x "${fixture}/tools/sloppy.sh"

# check_no_raw_io: a printf outside the sanctioned sinks.
cat > "${fixture}/src/core/bad_io.cc" <<'EOF'
#include <cstdio>
void Shout() { std::printf("raw stdout write\n"); }
EOF

# check_lint_manifest, top-level-gate rule: a lint that exists but is
# wired into no CMakeLists. Regression test for a silent-abort bug where
# grep's exit-1-on-no-match killed the lint (under set -e -o pipefail)
# before it could report the unregistered script — so assert the
# message, not just the exit code.
cat > "${fixture}/tools/check_unwired.sh" <<'EOF'
#!/bin/bash
set -euo pipefail
exit 0
EOF
chmod +x "${fixture}/tools/check_unwired.sh"

# check_lock_discipline: a raw std::mutex in library code, plus a Mutex
# member that no ROICL_* contract in its header ever references.
cat > "${fixture}/src/core/bad_raw_lock.cc" <<'EOF'
#include <mutex>
std::mutex raw_mu;
void Bump(int* n) {
  std::lock_guard<std::mutex> lock(raw_mu);
  ++*n;
}
EOF
cat > "${fixture}/src/core/bad_naked_mutex.h" <<'EOF'
#ifndef ROICL_CORE_BAD_NAKED_MUTEX_H_
#define ROICL_CORE_BAD_NAKED_MUTEX_H_
class Unguarded {
 public:
  void Touch();

 private:
  Mutex naked_mu_;
  int value_ = 0;
};
#endif  // ROICL_CORE_BAD_NAKED_MUTEX_H_
EOF

# check_unordered: an unordered container whose iteration order would
# leak into output.
cat > "${fixture}/src/core/bad_unordered.cc" <<'EOF'
#include <string>
#include <unordered_map>
int Sum(const std::unordered_map<std::string, int>& m) {
  int total = 0;
  for (const auto& [key, value] : m) total += value;
  return total;
}
EOF

# check_metric_names: a counter minted in library code (across a line
# break, to exercise the flattening) that the CLI never preregisters.
# The 12 preregistered decoys keep both extractions above the
# regex-rot count guards.
mkdir -p "${fixture}/src/obs" "${fixture}/tools"
cat > "${fixture}/src/obs/bad_metrics.cc" <<'EOF'
void Touch(MetricsRegistry& registry) {
  registry.GetCounter("decoy.metric_0");
  registry.GetCounter("decoy.metric_1");
  registry.GetCounter("decoy.metric_2");
  registry.GetCounter("decoy.metric_3");
  registry.GetCounter("decoy.metric_4");
  registry.GetCounter("decoy.metric_5");
  registry.GetCounter("decoy.metric_6");
  registry.GetCounter("decoy.metric_7");
  registry.GetCounter("decoy.metric_8");
  registry.GetGauge("decoy.metric_9");
  registry.GetGauge("decoy.metric_10");
  registry.GetHistogram(
      "monitor.unregistered_us", LatencyMicrosBuckets());
}
EOF
cat > "${fixture}/tools/roicl_cli.cc" <<'EOF'
void PreregisterStandardMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("decoy.metric_0");
  registry.GetCounter("decoy.metric_1");
  registry.GetCounter("decoy.metric_2");
  registry.GetCounter("decoy.metric_3");
  registry.GetCounter("decoy.metric_4");
  registry.GetCounter("decoy.metric_5");
  registry.GetCounter("decoy.metric_6");
  registry.GetCounter("decoy.metric_7");
  registry.GetCounter("decoy.metric_8");
  registry.GetGauge("decoy.metric_9");
  registry.GetGauge("decoy.metric_10");
  registry.GetHistogram("decoy.metric_11", LatencyMicrosBuckets());
}
EOF

# check_slo_specs: a spec with an unknown kind, a window inversion, and
# a duplicate record name.
mkdir -p "${fixture}/configs"
cat > "${fixture}/configs/bad.slo" <<'EOF'
slo latency kind=p99_latency_us target=5000 short_window=64 long_window=8
slo latency kind=made_up_kind target=0.5 short_window=8 long_window=64
EOF

# check_testnames: an orphan test source registered in no
# roicl_add_test(), next to enough registered tests (and one wired .sh
# harness) to clear the regex-rot count guards.
cat > "${fixture}/tests/orphan_test.cc" <<'EOF'
// Deliberately unregistered: compiles nowhere, runs never.
EOF
{
  for i in $(seq 0 10); do
    touch "${fixture}/tests/decoy${i}_test.cc"
    echo "roicl_add_test(decoy${i}_test decoy${i}_test.cc)"
  done
  echo "add_test(NAME wired_sh COMMAND bash wired_test.sh)"
} > "${fixture}/tests/CMakeLists.txt"
touch "${fixture}/tests/wired_test.sh"

# check_registry_complete: a Table-I name with no Register() call.
mkdir -p "${fixture}/src/exp" "${fixture}/src/pipeline"
cat > "${fixture}/src/exp/methods.h" <<'EOF'
inline constexpr std::array<const char*, 2> kTable1MethodNames = {
    "DRP", "rDRP"};
EOF
cat > "${fixture}/src/pipeline/builtin_scorers.cc" <<'EOF'
void RegisterBuiltinScorers(ScorerRegistry* registry) {
  registry->Register("DRP", MakeDrp);
  // rDRP registration deliberately missing.
}
EOF

# check_campaign_registry: a roster name with no Register() call and no
# roundtrip marker; the covered decoy keeps the extraction above its
# regex-rot count guard.
mkdir -p "${fixture}/src/campaign"
cat > "${fixture}/src/campaign/scorer.h" <<'EOF'
inline constexpr std::array<const char*, 2> kCampaignScorerNames = {
    "dnc-decoy", "dnc-ghost"};
EOF
cat > "${fixture}/src/campaign/scorer.cc" <<'EOF'
void BuildGlobalRegistry(CampaignScorerRegistry& registry) {
  registry.Register("dnc-decoy", MakeDecoy, LoadDecoy);
  // dnc-ghost registration deliberately missing.
}
EOF
cat > "${fixture}/tests/campaign_pipeline_test.cc" <<'EOF'
// campaign-roundtrip: dnc-decoy
TEST(CampaignRoundtrip, DncDecoySaveLoadPredictIsBitwise) {}
// dnc-ghost roundtrip deliberately missing.
EOF

# check_interval_backends: a registered backend with neither a
# roundtrip test nor a replay smoke row. The two covered decoys keep the
# extraction above its regex-rot count guard.
cat > "${fixture}/src/core/interval_backend.h" <<'EOF'
inline constexpr std::array<const char*, 3> kIntervalBackendNames = {
    "split", "weighted", "jackknife"};
EOF
cat > "${fixture}/tests/interval_backend_test.cc" <<'EOF'
TEST(IntervalBackend, BitwiseRoundtripSplit) {}
TEST(IntervalBackend, BitwiseRoundtripWeighted) {}
// jackknife roundtrip deliberately missing.
EOF
cat > "${fixture}/tests/cli_pipeline_test.sh" <<'EOF'
#!/bin/bash
grep -Eq "^split " replay_all.txt
grep -Eq "^weighted " replay_all.txt
EOF

# --- Each lint must reject its fixture... -------------------------------
expect_fail check_determinism bash "${runner}" "${fixture}" check_determinism
expect_fail check_include_guards \
  bash "${runner}" "${fixture}" check_include_guards
expect_fail check_scripts bash "${runner}" "${fixture}" check_scripts
expect_fail check_no_raw_io bash "${runner}" "${fixture}" check_no_raw_io
expect_fail check_registry_complete \
  bash "${runner}" "${fixture}" check_registry_complete
expect_fail check_campaign_registry \
  bash "${runner}" "${fixture}" check_campaign_registry
expect_fail check_interval_backends \
  bash "${runner}" "${fixture}" check_interval_backends
expect_fail check_metric_names \
  bash "${runner}" "${fixture}" check_metric_names
expect_fail check_slo_specs bash "${runner}" "${fixture}" check_slo_specs
expect_fail check_testnames bash "${runner}" "${fixture}" check_testnames
expect_fail check_lock_discipline \
  bash "${runner}" "${fixture}" check_lock_discipline
expect_fail check_unordered bash "${runner}" "${fixture}" check_unordered
expect_fail check_lint_manifest \
  bash "${runner}" "${fixture}" check_lint_manifest
# The engine itself must fail loudly on a name the manifest doesn't know,
# not vacuously pass by running zero lints.
expect_fail run_lints_unknown_name \
  bash "${runner}" "${repo_root}" check_no_such_lint

# The SLO lint pinpoints the violations, not just "failed".
slo_out=$(bash "${runner}" "${fixture}" check_slo_specs 2>&1 || true)
for needle in "unknown kind made_up_kind" "long_window must exceed" \
    "duplicate slo name latency"; do
  if grep -q "${needle}" <<<"${slo_out}"; then
    echo "ok: check_slo_specs reports '${needle}'"
  else
    echo "FAIL: check_slo_specs did not report '${needle}'"
    status=1
  fi
done

# The metric lint names the unregistered metric, not just "failed".
metric_out=$(bash "${runner}" "${fixture}" check_metric_names 2>&1 || true)
if grep -q "metric 'monitor.unregistered_us' used in src/" \
    <<<"${metric_out}"; then
  echo "ok: check_metric_names reports the unregistered metric"
else
  echo "FAIL: check_metric_names did not name the unregistered metric"
  status=1
fi

# The registry lint names the missing method, not just "failed".
registry_out=$(bash "${runner}" "${fixture}" check_registry_complete \
  2>&1 || true)
if grep -q "method 'rDRP' from kTable1MethodNames" <<<"${registry_out}"; then
  echo "ok: check_registry_complete reports the unregistered method"
else
  echo "FAIL: check_registry_complete did not name the missing method"
  status=1
fi

# The campaign lint names the uncovered scorer and both missing
# surfaces, not just "failed".
campaign_out=$(bash "${runner}" "${fixture}" check_campaign_registry \
  2>&1 || true)
for needle in \
    "scorer 'dnc-ghost' from kCampaignScorerNames" \
    "scorer 'dnc-ghost' has no bitwise save->load->predict roundtrip"; do
  if grep -q "${needle}" <<<"${campaign_out}"; then
    echo "ok: check_campaign_registry reports '${needle}'"
  else
    echo "FAIL: check_campaign_registry did not report '${needle}'"
    status=1
  fi
done

# The backend lint names the uncovered backend and both missing
# surfaces, not just "failed".
backend_out=$(bash "${runner}" "${fixture}" check_interval_backends \
  2>&1 || true)
for needle in \
    "backend 'jackknife' has no BitwiseRoundtripJackknife" \
    "backend 'jackknife' has no monitor-replay smoke row"; do
  if grep -q "${needle}" <<<"${backend_out}"; then
    echo "ok: check_interval_backends reports '${needle}'"
  else
    echo "FAIL: check_interval_backends did not report '${needle}'"
    status=1
  fi
done

# The testname lint names the orphan source, not just "failed".
testnames_out=$(bash "${runner}" "${fixture}" check_testnames 2>&1 || true)
if grep -q "tests/orphan_test.cc: not registered" <<<"${testnames_out}"; then
  echo "ok: check_testnames reports the orphan test by name"
else
  echo "FAIL: check_testnames did not name the orphan test"
  status=1
fi

# Capture first: under pipefail the lint's expected exit 1 would mask
# grep's verdict in a direct pipeline.
manifest_out=$(bash "${runner}" "${fixture}" check_lint_manifest 2>&1 || true)
if grep -q 'check_unwired.sh: referenced 0 times' \
    <<<"${manifest_out}"; then
  echo "ok: check_lint_manifest reports the unregistered lint by name"
else
  echo "FAIL: check_lint_manifest did not report the unregistered lint"
  status=1
fi

# The lock lint names both the raw primitive and the contract-less member.
lock_out=$(bash "${runner}" "${fixture}" check_lock_discipline 2>&1 || true)
for needle in "bad_raw_lock.cc" "Mutex member 'naked_mu_'"; do
  if grep -q "${needle}" <<<"${lock_out}"; then
    echo "ok: check_lock_discipline reports '${needle}'"
  else
    echo "FAIL: check_lock_discipline did not report '${needle}'"
    status=1
  fi
done

# The unordered lint names the offending file, not just "failed".
unordered_out=$(bash "${runner}" "${fixture}" check_unordered 2>&1 || true)
if grep -q 'bad_unordered.cc' <<<"${unordered_out}"; then
  echo "ok: check_unordered reports the unordered-container site"
else
  echo "FAIL: check_unordered did not name the unordered-container site"
  status=1
fi

# --- ...and accept the real tree (one full-manifest engine run). --------
expect_pass full_manifest bash "${runner}" "${repo_root}"

exit "${status}"
