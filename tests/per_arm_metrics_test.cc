#include "metrics/per_arm.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "metrics/cost_curve.h"
#include "metrics/qini.h"
#include "synth/multi_treatment.h"
#include "synth/synthetic_generator.h"

namespace roicl::metrics {
namespace {

/// Three-arm evaluation fixture: each arm's binary sub-problem plus a
/// deterministic (noisy-oracle) score vector per arm, the same shape the
/// campaign scenario feeds into ComputePerArmMetrics.
class PerArmMetricsTest : public ::testing::Test {
 protected:
  static constexpr int kArms = 3;

  static void SetUpTestSuite() {
    synth::MultiTreatmentGenerator generator(
        synth::CriteoSynthConfig(),
        {synth::ArmEffect{1.0, 0.0}, synth::ArmEffect{1.4, -0.04},
         synth::ArmEffect{0.7, -0.08}});
    Rng rng(31);
    synth::MultiTreatmentDataset data = generator.Generate(4000, true, &rng);
    eval_ = new std::vector<RctDataset>();
    scores_ = new std::vector<std::vector<double>>();
    Rng noise(7, 1);
    for (int arm = 1; arm <= kArms; ++arm) {
      RctDataset sub = data.BinarySubproblem(arm);
      std::vector<double> s(AsSize(sub.n()));
      for (int i = 0; i < sub.n(); ++i) {
        // Noisy oracle: true ROI of the sub-problem plus jitter keeps the
        // ranking informative without being degenerate.
        s[AsSize(i)] = sub.true_tau_r[AsSize(i)] /
                           std::max(sub.true_tau_c[AsSize(i)], 1e-6) +
                       noise.Normal(0.0, 0.05);
      }
      scores_->push_back(std::move(s));
      eval_->push_back(std::move(sub));
    }
  }
  static void TearDownTestSuite() {
    delete eval_;
    delete scores_;
    eval_ = nullptr;
    scores_ = nullptr;
  }

  static std::vector<RctDataset>* eval_;
  static std::vector<std::vector<double>>* scores_;
};

std::vector<RctDataset>* PerArmMetricsTest::eval_ = nullptr;
std::vector<std::vector<double>>* PerArmMetricsTest::scores_ = nullptr;

TEST_F(PerArmMetricsTest, MatchesSerialSingleArmMetrics) {
  PerArmCurveMetrics got = ComputePerArmMetrics(*scores_, *eval_);
  ASSERT_EQ(got.aucc.size(), AsSize(kArms));
  ASSERT_EQ(got.qini.size(), AsSize(kArms));
  for (int k = 0; k < kArms; ++k) {
    const size_t sk = AsSize(k);
    // Per-arm values are exactly the binary Table-I metrics on that
    // arm's sub-problem — same code path, bit for bit.
    EXPECT_EQ(got.aucc[sk], Aucc((*scores_)[sk], (*eval_)[sk]));
    EXPECT_EQ(got.qini[sk], QiniCoefficient((*scores_)[sk], (*eval_)[sk]));
    EXPECT_TRUE(std::isfinite(got.aucc[sk]));
    EXPECT_TRUE(std::isfinite(got.qini[sk]));
  }
}

TEST_F(PerArmMetricsTest, BitIdenticalAcrossThreadCounts) {
  PerArmCurveMetrics serial = ComputePerArmMetrics(*scores_, *eval_, 0);
  for (int threads : {1, 2, 4, 8}) {
    PerArmCurveMetrics parallel =
        ComputePerArmMetrics(*scores_, *eval_, threads);
    ASSERT_EQ(parallel.aucc.size(), serial.aucc.size());
    for (size_t k = 0; k < serial.aucc.size(); ++k) {
      EXPECT_EQ(serial.aucc[k], parallel.aucc[k])
          << "aucc diverged for arm " << k + 1 << " at " << threads
          << " threads";
      EXPECT_EQ(serial.qini[k], parallel.qini[k])
          << "qini diverged for arm " << k + 1 << " at " << threads
          << " threads";
    }
  }
}

TEST_F(PerArmMetricsTest, NoisyOracleStaysBelowOracle) {
  PerArmCurveMetrics got = ComputePerArmMetrics(*scores_, *eval_);
  std::vector<double> oracle = PerArmOracleAucc(*eval_);
  ASSERT_EQ(oracle.size(), AsSize(kArms));
  for (int k = 0; k < kArms; ++k) {
    const size_t sk = AsSize(k);
    EXPECT_EQ(oracle[sk], OracleAucc((*eval_)[sk]));
    // A lightly-jittered oracle ranking lands well above random and
    // close to the oracle curve. The oracle is only optimal in
    // expectation — AUCC is computed on realized outcomes, so the
    // jittered ranking may beat it by sampling noise; allow slack.
    EXPECT_GT(got.aucc[sk], 0.5);
    EXPECT_LE(got.aucc[sk], oracle[sk] + 0.03);
  }
}

TEST_F(PerArmMetricsTest, SingleArmNeedsNoPool) {
  std::vector<RctDataset> one_eval = {(*eval_)[0]};
  std::vector<std::vector<double>> one_scores = {(*scores_)[0]};
  PerArmCurveMetrics serial = ComputePerArmMetrics(one_scores, one_eval, 0);
  PerArmCurveMetrics pooled = ComputePerArmMetrics(one_scores, one_eval, 8);
  ASSERT_EQ(serial.aucc.size(), 1u);
  EXPECT_EQ(serial.aucc[0], pooled.aucc[0]);
  EXPECT_EQ(serial.qini[0], pooled.qini[0]);
}

TEST(PerArmMetricsValidationDeathTest, ChecksShapeMismatches) {
  synth::MultiTreatmentGenerator generator(
      synth::CriteoSynthConfig(),
      {synth::ArmEffect{1.0, 0.0}, synth::ArmEffect{1.4, -0.04}});
  Rng rng(5);
  synth::MultiTreatmentDataset data = generator.Generate(400, false, &rng);
  std::vector<RctDataset> eval = {data.BinarySubproblem(1),
                                  data.BinarySubproblem(2)};
  std::vector<std::vector<double>> scores = {
      std::vector<double>(AsSize(eval[0].n()), 0.1)};
  // Outer arity mismatch: 1 score vector for 2 arms.
  EXPECT_DEATH(ComputePerArmMetrics(scores, eval), "");
  // Inner size mismatch: arm 2's scores are one row short.
  scores.push_back(std::vector<double>(AsSize(eval[1].n() - 1), 0.1));
  EXPECT_DEATH(ComputePerArmMetrics(scores, eval), "size mismatch");
}

}  // namespace
}  // namespace roicl::metrics
