// Load-replay harness tests: option validation, the five-phase adversarial
// smoke run against a live ScoringService + ServingMonitor (phase ordering,
// count conservation, deliberate SLO breach, JSON report shape), exemplar
// trace IDs resolving to complete flows in the exported trace, and the
// swap_storm phase racing mid-flight conformal-quantile swaps against
// scoring — the latter runs under ThreadSanitizer via tools/run_tsan.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "monitor/load_replay.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "pipeline/pipeline.h"
#include "synth/synthetic_generator.h"

namespace {

using namespace roicl;
using namespace roicl::monitor;

RctDataset Gen(int n, uint64_t seed) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(seed);
  return generator.Generate(n, /*shifted=*/false, &rng);
}

/// Small-budget rDRP pipeline with a real conformal quantile.
pipeline::Pipeline TrainSmallRdrp(uint64_t seed = 21) {
  pipeline::Hyperparams hp;
  hp.neural_epochs = 4;
  hp.restarts = 1;
  hp.mc_passes = 5;
  hp.seed = seed;
  RctDataset train = Gen(300, seed);
  RctDataset calib = Gen(150, seed + 1);
  return std::move(
             pipeline::Pipeline::Train("rDRP", hp, train, &calib, {}))
      .value();
}

obs::SloSpec MakeSpec(std::string name, obs::SloKind kind, double target,
                      size_t short_window, size_t long_window) {
  obs::SloSpec spec;
  spec.name = std::move(name);
  spec.kind = kind;
  spec.target = target;
  spec.short_window = short_window;
  spec.long_window = long_window;
  return spec;
}

/// Small, fast option set: tiny queue so the burst phase actually
/// overflows, high exemplar rate so every stage retains exemplars.
LoadReplayOptions SmallOptions() {
  LoadReplayOptions options;
  options.rows_per_request = 8;
  options.requests_per_phase = 8;
  options.client_threads = 2;
  options.burst_factor = 4;
  options.tight_deadline_micros = 20;
  options.oversized_factor = 8;
  options.swap_storm_swaps = 32;
  options.feedback_rows = 64;
  options.service.max_batch_requests = 4;
  options.service.max_queue = 8;
  options.service.exemplar_rate = 0.5;
  options.service.shadow_interval_every = 3;
  return options;
}

TEST(LoadReplayTest, ValidatesOptionsAndScorer) {
  RctDataset stream = Gen(64, 5);
  RctDataset calib = Gen(64, 6);
  {
    LoadReplayOptions options = SmallOptions();
    options.rows_per_request = 0;
    StatusOr<LoadReplayResult> result =
        RunLoadReplay(TrainSmallRdrp(), calib, stream, options);
    EXPECT_FALSE(result.ok());
  }
  {
    RctDataset empty = Gen(1, 7).Subset({});
    StatusOr<LoadReplayResult> result =
        RunLoadReplay(TrainSmallRdrp(), calib, empty, SmallOptions());
    EXPECT_FALSE(result.ok());
  }
}

TEST(LoadReplayTest, SmokeRunBreachesSlosAndResolvesExemplarsToFlows) {
  obs::MetricsRegistry::Global().Reset();
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  collector.Clear();
  collector.SetEnabled(true);

  LoadReplayOptions options = SmallOptions();
  // A 1us latency target cannot be met: the latency SLO must BREACH (the
  // report is required to demonstrate at least one deliberate breach).
  options.slos.push_back(MakeSpec("latency_p99",
                                  obs::SloKind::kP99LatencyUs, 1.0,
                                  /*short_window=*/4, /*long_window=*/8));
  options.slos.push_back(MakeSpec("admission", obs::SloKind::kRejectRate,
                                  0.2, /*short_window=*/8,
                                  /*long_window=*/16));

  RctDataset stream = Gen(256, 11);
  RctDataset calib = Gen(128, 12);
  StatusOr<LoadReplayResult> result_or =
      RunLoadReplay(TrainSmallRdrp(), calib, stream, options);
  collector.SetEnabled(false);
  ASSERT_TRUE(result_or.ok()) << result_or.status().message();
  const LoadReplayResult& result = result_or.value();

  // All five phases ran, in order.
  ASSERT_EQ(result.phases.size(), 5u);
  const char* expected[] = {"baseline", "burst", "deadline_heavy",
                            "oversized", "swap_storm"};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result.phases[i].phase, expected[i]);
  }

  // Every submitted request is accounted for, per phase and in total.
  int submitted_sum = 0;
  for (const LoadPhaseStat& phase : result.phases) {
    EXPECT_EQ(phase.ok + phase.rejected + phase.deadline_exceeded +
                  phase.errors,
              phase.submitted)
        << phase.phase;
    submitted_sum += phase.submitted;
  }
  EXPECT_EQ(submitted_sum, result.total_submitted);
  EXPECT_EQ(result.total_errors, 0);
  EXPECT_GT(result.total_ok, 0);
  EXPECT_GE(result.reject_rate, 0.0);
  EXPECT_LE(result.reject_rate, 1.0);
  EXPECT_GT(result.p99_us, 0.0);
  EXPECT_GE(result.p99_us, result.p50_us);
  EXPECT_GT(result.quantile_swaps, 0) << "swap_storm did not race";
  EXPECT_FALSE(result.interrupted);

  // Stage breakdown covers the whole request lane; scoring ran.
  ASSERT_EQ(result.stages.size(), 5u);
  std::set<std::string> stage_names;
  for (const StageBreakdown& stage : result.stages) {
    stage_names.insert(stage.stage);
  }
  EXPECT_EQ(stage_names, (std::set<std::string>{
                             "queue", "assemble", "score", "conformal",
                             "observe"}));
  for (const StageBreakdown& stage : result.stages) {
    if (stage.stage == "conformal") continue;  // shadow-sampled subset
    EXPECT_GT(stage.count, 0u) << stage.stage;
  }

  // The deliberate breach surfaced.
  EXPECT_EQ(result.slo_worst_state, "BREACH");
  EXPECT_NE(result.slo_verdict_json.find("\"name\":\"latency_p99\""),
            std::string::npos);

  // Acceptance invariant: every exemplar trace ID must resolve to a
  // complete flow ('s' start and 'f' finish) in the exported trace.
  std::set<uint64_t> starts;
  std::set<uint64_t> finishes;
  for (const obs::TraceEvent& event : collector.Snapshot()) {
    if (event.phase == 's') starts.insert(event.flow_id);
    if (event.phase == 'f') finishes.insert(event.flow_id);
  }
  int exemplars_seen = 0;
  for (const StageBreakdown& stage : result.stages) {
    for (uint64_t trace_id : stage.exemplar_trace_ids) {
      ++exemplars_seen;
      EXPECT_TRUE(starts.count(trace_id) == 1)
          << stage.stage << " exemplar " << trace_id << " has no flow start";
      EXPECT_TRUE(finishes.count(trace_id) == 1)
          << stage.stage << " exemplar " << trace_id
          << " has no flow finish";
    }
  }
  EXPECT_GT(exemplars_seen, 0) << "exemplar rate 0.5 retained nothing";

  // The JSON report carries every section the bench harness reads.
  const std::string json = result.ToJson();
  for (const char* needle :
       {"\"phases\":[", "\"stages\":[", "\"totals\":{", "\"reject_rate\":",
        "\"p99_us\":", "\"quantile_swaps\":", "\"slo\":",
        "\"slo_worst_state\":\"BREACH\"", "\"interrupted\":false"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  collector.Clear();
}

TEST(LoadReplayTest, CancellationStopsEarlyAndStillReports) {
  obs::MetricsRegistry::Global().Reset();
  LoadReplayOptions options = SmallOptions();
  options.cancelled = [] { return true; };  // cancel at the first poll
  RctDataset stream = Gen(128, 13);
  RctDataset calib = Gen(64, 14);
  StatusOr<LoadReplayResult> result_or =
      RunLoadReplay(TrainSmallRdrp(), calib, stream, options);
  ASSERT_TRUE(result_or.ok()) << result_or.status().message();
  const LoadReplayResult& result = result_or.value();
  EXPECT_TRUE(result.interrupted);
  EXPECT_LT(result.phases.size(), 5u);
  EXPECT_NE(result.ToJson().find("\"interrupted\":true"),
            std::string::npos);
}

}  // namespace
