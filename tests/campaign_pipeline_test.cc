#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/karm_rank_net.h"
#include "campaign/scenario.h"
#include "campaign/scorer.h"
#include "common/rng.h"
#include "core/roi_star.h"
#include "metrics/coverage.h"
#include "synth/multi_treatment.h"
#include "synth/synthetic_generator.h"

/// \file
/// End-to-end guarantees of the multi-treatment campaign pipeline:
/// per-arm conformal coverage >= 1 - alpha (within property-test slack)
/// on every arm, across the three synthetic dataset presets, for all
/// three interval backends; bitwise save -> load -> predict roundtrips
/// for every registered campaign scorer; and the scenario driver's
/// invariants in both allocation modes.

namespace roicl::campaign {
namespace {

synth::SyntheticConfig PresetByName(const std::string& name) {
  if (name == "meituan") return synth::MeituanSynthConfig();
  if (name == "alibaba") return synth::AlibabaSynthConfig();
  return synth::CriteoSynthConfig();
}

/// Two-arm grid: arm 2 costs 1.4x and converts at slightly lower ROI —
/// both binary sub-problems stay close to the regime the binary rDRP
/// coverage tests are calibrated for.
std::vector<synth::ArmEffect> TwoArms() {
  // Scales <= 1 clear the generator saturation guard on all presets
  // (alibaba's high base rate tolerates at most ~1.16).
  return {synth::ArmEffect{1.0, 0.0}, synth::ArmEffect{0.8, -0.04}};
}

CampaignScorerConfig FastConfig() {
  CampaignScorerConfig config;
  config.rdrp.drp.train.epochs = 12;
  config.rdrp.mc_passes = 20;
  config.ranknet.train.epochs = 10;
  return config;
}

struct Splits {
  synth::MultiTreatmentDataset train;
  synth::MultiTreatmentDataset calibration;
  synth::MultiTreatmentDataset test;
};

Splits MakeSplits(const std::string& dataset, int n_train, int n_calib,
                  int n_test) {
  synth::MultiTreatmentGenerator generator(PresetByName(dataset), TwoArms());
  Rng rng(31);
  Splits splits{generator.Generate(n_train, false, &rng),
                generator.Generate(n_calib, true, &rng),
                generator.Generate(n_test, true, &rng)};
  return splits;
}

// ---------------------------------------------------------------------
// Per-arm conformal coverage: every arm, every dataset preset, every
// interval backend. The target of arm k is the convergence point of the
// arm's own binary sub-problem on the test draw (Eq. 4 per sub-problem).
// ---------------------------------------------------------------------

class PerArmCoverage
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(PerArmCoverage, EveryArmCoversItsConvergencePoint) {
  const std::string& dataset = std::get<0>(GetParam());
  const std::string& backend = std::get<1>(GetParam());
  Splits splits = MakeSplits(dataset, 6000, 2250, 3000);

  CampaignScorerConfig config = FastConfig();
  config.rdrp.interval_backend = backend;
  StatusOr<std::unique_ptr<KArmScorer>> scorer =
      CampaignScorerRegistry::Global().Create("dnc-rdrp", config);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  scorer.value()->FitWithCalibration(splits.train, splits.calibration);
  ASSERT_TRUE(scorer.value()->supports_intervals());

  std::vector<std::vector<metrics::Interval>> intervals =
      scorer.value()->PredictIntervalsPerArm(splits.test.x);
  ASSERT_EQ(intervals.size(), 2u);
  for (int arm = 1; arm <= 2; ++arm) {
    double target =
        core::BinarySearchRoiStar(splits.test.BinarySubproblem(arm));
    std::vector<double> targets(intervals[arm - 1].size(), target);
    metrics::CoverageReport report =
        metrics::EvaluateCoverage(intervals[arm - 1], targets);
    // 1 - alpha = 0.9 minus the finite-sample slack the binary coverage
    // tests use: calibration roi* and test roi* differ slightly.
    EXPECT_GE(report.coverage, 0.82)
        << "dataset=" << dataset << " backend=" << backend
        << " arm=" << arm;
    EXPECT_GT(report.mean_width, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsByBackends, PerArmCoverage,
    ::testing::Combine(::testing::Values("criteo", "meituan", "alibaba"),
                       ::testing::Values("split", "weighted", "cqr")),
    [](const ::testing::TestParamInfo<PerArmCoverage::ParamType>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// ---------------------------------------------------------------------
// Registry roster and bitwise persistence roundtrips (one per scorer —
// the campaign registry lint requires a marked roundtrip test for every
// Register() call in scorer.cc).
// ---------------------------------------------------------------------

TEST(CampaignRegistry, RosterMatchesCompileTimeNames) {
  std::vector<std::string> names = CampaignScorerRegistry::Global().Names();
  ASSERT_EQ(names.size(), kCampaignScorerNames.size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], kCampaignScorerNames[i]);
  }
  EXPECT_FALSE(
      CampaignScorerRegistry::Global().Create("nope", {}).ok());
}

// campaign-roundtrip: dnc-rdrp
TEST(CampaignRoundtrip, DncRdrpSaveLoadPredictIsBitwise) {
  Splits splits = MakeSplits("criteo", 1500, 600, 400);
  CampaignScorerConfig config = FastConfig();
  config.rdrp.drp.train.epochs = 4;
  config.rdrp.drp.restarts = 1;
  StatusOr<std::unique_ptr<KArmScorer>> scorer =
      CampaignScorerRegistry::Global().Create("dnc-rdrp", config);
  ASSERT_TRUE(scorer.ok());
  scorer.value()->FitWithCalibration(splits.train, splits.calibration);

  std::stringstream stream;
  ASSERT_TRUE(scorer.value()->Save(stream).ok());
  StatusOr<std::unique_ptr<KArmScorer>> loaded =
      CampaignScorerRegistry::Global().Load("dnc-rdrp", stream, config);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  std::vector<std::vector<double>> want =
      scorer.value()->PredictRoiPerArm(splits.test.x);
  std::vector<std::vector<double>> got =
      loaded.value()->PredictRoiPerArm(splits.test.x);
  ASSERT_EQ(want.size(), got.size());
  for (size_t k = 0; k < want.size(); ++k) {
    ASSERT_EQ(want[k].size(), got[k].size());
    for (size_t i = 0; i < want[k].size(); ++i) {
      EXPECT_EQ(want[k][i], got[k][i]) << "arm " << k << " row " << i;
    }
  }
  std::vector<std::vector<metrics::Interval>> want_iv =
      scorer.value()->PredictIntervalsPerArm(splits.test.x);
  std::vector<std::vector<metrics::Interval>> got_iv =
      loaded.value()->PredictIntervalsPerArm(splits.test.x);
  ASSERT_EQ(want_iv.size(), got_iv.size());
  for (size_t k = 0; k < want_iv.size(); ++k) {
    ASSERT_EQ(want_iv[k].size(), got_iv[k].size());
    for (size_t i = 0; i < want_iv[k].size(); ++i) {
      EXPECT_EQ(want_iv[k][i].lo, got_iv[k][i].lo);
      EXPECT_EQ(want_iv[k][i].hi, got_iv[k][i].hi);
    }
  }
}

// campaign-roundtrip: dnc-ranknet
TEST(CampaignRoundtrip, DncRankNetSaveLoadPredictIsBitwise) {
  Splits splits = MakeSplits("criteo", 1500, 600, 400);
  CampaignScorerConfig config = FastConfig();
  config.ranknet.train.epochs = 4;
  StatusOr<std::unique_ptr<KArmScorer>> scorer =
      CampaignScorerRegistry::Global().Create("dnc-ranknet", config);
  ASSERT_TRUE(scorer.ok());
  scorer.value()->FitWithCalibration(splits.train, splits.calibration);
  EXPECT_FALSE(scorer.value()->supports_intervals());

  std::stringstream stream;
  ASSERT_TRUE(scorer.value()->Save(stream).ok());
  StatusOr<std::unique_ptr<KArmScorer>> loaded =
      CampaignScorerRegistry::Global().Load("dnc-ranknet", stream, config);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  std::vector<std::vector<double>> want =
      scorer.value()->PredictRoiPerArm(splits.test.x);
  std::vector<std::vector<double>> got =
      loaded.value()->PredictRoiPerArm(splits.test.x);
  ASSERT_EQ(want.size(), got.size());
  for (size_t k = 0; k < want.size(); ++k) {
    ASSERT_EQ(want[k].size(), got[k].size());
    for (size_t i = 0; i < want[k].size(); ++i) {
      EXPECT_EQ(want[k][i], got[k][i]) << "arm " << k << " row " << i;
    }
  }
}

TEST(CampaignRoundtrip, LoadRejectsCorruptStreams) {
  std::stringstream empty;
  EXPECT_FALSE(
      CampaignScorerRegistry::Global().Load("dnc-rdrp", empty, {}).ok());
  std::stringstream bad_magic("roicl-karm-ranknet-v9\n");
  EXPECT_FALSE(CampaignScorerRegistry::Global()
                   .Load("dnc-ranknet", bad_magic, {})
                   .ok());
}

// ---------------------------------------------------------------------
// K-arm RankNet learning sanity and engine invariance.
// ---------------------------------------------------------------------

TEST(KArmRankNetTest, PredictionsAreEngineInvariant) {
  Splits splits = MakeSplits("criteo", 1200, 400, 300);
  KArmRankNetConfig config;
  config.train.epochs = 6;
  KArmRankNet model(config);
  model.Fit(splits.train);
  std::vector<std::vector<double>> base =
      model.PredictRoiPerArm(splits.test.x);
  nn::BatchOptions other;
  other.batch_size = 17;
  other.num_threads = 4;
  model.set_predict_options(other);
  std::vector<std::vector<double>> alt =
      model.PredictRoiPerArm(splits.test.x);
  ASSERT_EQ(base.size(), alt.size());
  for (size_t k = 0; k < base.size(); ++k) {
    for (size_t i = 0; i < base[k].size(); ++i) {
      EXPECT_EQ(base[k][i], alt[k][i]);
    }
  }
  for (const std::vector<double>& arm : base) {
    for (double v : arm) {
      EXPECT_GT(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

// ---------------------------------------------------------------------
// Scenario driver invariants.
// ---------------------------------------------------------------------

CampaignScenarioConfig SmallScenario() {
  CampaignScenarioConfig config;
  config.num_arms = 2;
  config.n_train = 1500;
  config.n_calibration = 600;
  config.n_test = 500;
  config.scorer_config = FastConfig();
  config.scorer_config.rdrp.drp.train.epochs = 4;
  config.scorer_config.rdrp.drp.restarts = 1;
  return config;
}

TEST(CampaignScenario, GreedyModeAllocatesWithinBudgets) {
  CampaignScenarioConfig config = SmallScenario();
  config.arm_budget_fractions = {0.2, 0.1};
  StatusOr<CampaignScenarioResult> result = RunCampaignScenario(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().has_intervals);
  EXPECT_GT(result.value().assigned, 0);
  EXPECT_LE(result.value().spent, result.value().global_budget);
  ASSERT_EQ(result.value().arms.size(), 2u);
  int64_t assigned = 0;
  for (const CampaignArmReport& arm : result.value().arms) {
    EXPECT_LE(arm.spent, arm.budget);
    EXPECT_TRUE(std::isfinite(arm.aucc));
    assigned += arm.assigned;
  }
  EXPECT_EQ(assigned, result.value().assigned);
}

TEST(CampaignScenario, DualModeReportsCertificate) {
  CampaignScenarioConfig config = SmallScenario();
  config.mode = "dual";
  config.scorer = "dnc-ranknet";
  config.scorer_config.ranknet.train.epochs = 4;
  StatusOr<CampaignScenarioResult> result = RunCampaignScenario(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().has_intervals);
  EXPECT_GT(result.value().dual_iterations, 0);
  EXPECT_GE(result.value().dual_gap, -1e-9);
  EXPECT_LE(result.value().spent, result.value().global_budget);
}

TEST(CampaignScenario, RejectsBadConfigs) {
  CampaignScenarioConfig config = SmallScenario();
  config.dataset = "nope";
  EXPECT_FALSE(RunCampaignScenario(config).ok());
  config = SmallScenario();
  config.mode = "annealing";
  EXPECT_FALSE(RunCampaignScenario(config).ok());
  config = SmallScenario();
  config.arm_budget_fractions = {0.5};  // wrong arity for 2 arms
  EXPECT_FALSE(RunCampaignScenario(config).ok());
  config = SmallScenario();
  config.scorer = "unknown-scorer";
  EXPECT_FALSE(RunCampaignScenario(config).ok());
}

}  // namespace
}  // namespace roicl::campaign
