#include "core/drp_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/stats.h"
#include "core/dr_model.h"
#include "core/mc_dropout.h"
#include "metrics/cost_curve.h"
#include "synth/synthetic_generator.h"

namespace roicl::core {
namespace {

class DirectModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    generator_ = new synth::SyntheticGenerator(synth::CriteoSynthConfig());
    Rng rng(21);
    train_ = new RctDataset(generator_->Generate(6000, false, &rng));
    test_ = new RctDataset(generator_->Generate(3000, false, &rng));
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete train_;
    delete test_;
    generator_ = nullptr;
    train_ = nullptr;
    test_ = nullptr;
  }

  static synth::SyntheticGenerator* generator_;
  static RctDataset* train_;
  static RctDataset* test_;
};

synth::SyntheticGenerator* DirectModelTest::generator_ = nullptr;
RctDataset* DirectModelTest::train_ = nullptr;
RctDataset* DirectModelTest::test_ = nullptr;

TEST_F(DirectModelTest, DrpPredictionsAreValidRois) {
  DrpConfig config;
  config.train.epochs = 15;
  DrpModel drp(config);
  drp.Fit(*train_);
  std::vector<double> roi = drp.PredictRoi(test_->x);
  ASSERT_EQ(static_cast<int>(roi.size()), test_->n());
  for (double r : roi) {
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST_F(DirectModelTest, DrpScoreIsLogitOfRoi) {
  DrpConfig config;
  config.train.epochs = 5;
  DrpModel drp(config);
  drp.Fit(*train_);
  std::vector<double> scores = drp.PredictScore(test_->x);
  std::vector<double> roi = drp.PredictRoi(test_->x);
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(roi[AsSize(i)], Sigmoid(scores[AsSize(i)]), 1e-12);
  }
}

TEST_F(DirectModelTest, DrpBeatsRandomRanking) {
  DrpConfig config;
  config.train.epochs = 25;
  DrpModel drp(config);
  drp.Fit(*train_);
  double aucc = metrics::Aucc(drp.PredictRoi(test_->x), *test_);
  EXPECT_GT(aucc, 0.53) << "DRP should rank better than random";
}

TEST_F(DirectModelTest, DrpAverageRoiNearConvergencePoint) {
  // Unbiasedness in aggregate: the mean predicted ROI approximates the
  // population ROI tau_r / tau_c.
  DrpConfig config;
  config.train.epochs = 30;
  DrpModel drp(config);
  drp.Fit(*train_);
  std::vector<double> roi = drp.PredictRoi(test_->x);
  double population_roi =
      RctDataset::DiffInMeans(test_->treatment, test_->y_revenue) /
      RctDataset::DiffInMeans(test_->treatment, test_->y_cost);
  EXPECT_NEAR(Mean(roi), population_roi, 0.15);
}

TEST_F(DirectModelTest, DrpDeterministicBySeed) {
  DrpConfig config;
  config.train.epochs = 5;
  DrpModel a(config), b(config);
  a.Fit(*train_);
  b.Fit(*train_);
  std::vector<double> ra = a.PredictRoi(test_->x);
  std::vector<double> rb = b.PredictRoi(test_->x);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(ra[AsSize(i)], rb[AsSize(i)]);
}

TEST_F(DirectModelTest, McDropoutStatsAreSane) {
  DrpConfig config;
  config.train.epochs = 10;
  DrpModel drp(config);
  drp.Fit(*train_);
  McDropoutStats stats = drp.PredictMcRoi(test_->x, 25, /*seed=*/5);
  ASSERT_EQ(static_cast<int>(stats.mean.size()), test_->n());
  double mean_std = Mean(stats.stddev);
  EXPECT_GT(mean_std, 0.0) << "dropout must induce prediction variance";
  for (int i = 0; i < test_->n(); ++i) {
    EXPECT_GE(stats.stddev[AsSize(i)], 0.0);
    EXPECT_GT(stats.mean[AsSize(i)], 0.0);
    EXPECT_LT(stats.mean[AsSize(i)], 1.0);
  }
  // MC mean tracks the deterministic point estimate.
  std::vector<double> point = drp.PredictRoi(test_->x);
  EXPECT_GT(PearsonCorrelation(stats.mean, point), 0.9);
}

TEST_F(DirectModelTest, McDropoutDeterministicBySeed) {
  DrpConfig config;
  config.train.epochs = 5;
  DrpModel drp(config);
  drp.Fit(*train_);
  McDropoutStats a = drp.PredictMcRoi(test_->x, 10, 7);
  McDropoutStats b = drp.PredictMcRoi(test_->x, 10, 7);
  McDropoutStats c = drp.PredictMcRoi(test_->x, 10, 8);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_NE(a.mean, c.mean);
}

TEST_F(DirectModelTest, McStdShrinksWithMorePassesOnAverageStability) {
  // More passes stabilize the mean estimate: two independent 100-pass
  // means agree better than two independent 5-pass means.
  DrpConfig config;
  config.train.epochs = 5;
  DrpModel drp(config);
  drp.Fit(*train_);
  auto disagreement = [&](int passes, uint64_t s1, uint64_t s2) {
    McDropoutStats a = drp.PredictMcRoi(test_->x, passes, s1);
    McDropoutStats b = drp.PredictMcRoi(test_->x, passes, s2);
    double acc = 0.0;
    for (size_t i = 0; i < a.mean.size(); ++i) {
      acc += std::fabs(a.mean[i] - b.mean[i]);
    }
    return acc / static_cast<double>(a.mean.size());
  };
  EXPECT_LT(disagreement(80, 1, 2), disagreement(5, 3, 4));
}

TEST_F(DirectModelTest, DrLearnsAndRanks) {
  DirectRankConfig config;
  config.train.epochs = 25;
  DirectRankModel dr(config);
  dr.Fit(*train_);
  std::vector<double> roi = dr.PredictRoi(test_->x);
  for (double r : roi) {
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
  double aucc = metrics::Aucc(roi, *test_);
  EXPECT_GT(aucc, 0.5) << "DR should at least beat random";
}

TEST_F(DirectModelTest, DrSupportsMcDropout) {
  DirectRankConfig config;
  config.train.epochs = 10;
  DirectRankModel dr(config);
  dr.Fit(*train_);
  McDropoutStats stats = dr.PredictMcRoi(test_->x, 15, 3);
  EXPECT_GT(Mean(stats.stddev), 0.0);
}

TEST(DrpModelGuardsTest, PredictBeforeFitAborts) {
  DrpModel drp(DrpConfig{});
  EXPECT_DEATH(drp.PredictRoi(Matrix(1, 2)), "before Fit");
}

}  // namespace
}  // namespace roicl::core
