// Round-trip contract for the pipeline layer: for EVERY registered
// scorer, train -> Save -> Load -> predict must be bitwise identical to
// the in-process predictions, at multiple prediction-engine thread
// counts. Also pins the registry's completeness (every Table-I method
// resolves) and its unknown-name diagnostics.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/interval_backend.h"
#include "exp/methods.h"
#include "pipeline/hyperparams.h"
#include "pipeline/pipeline.h"
#include "pipeline/registry.h"
#include "synth/synthetic_generator.h"

namespace {

using namespace roicl;

RctDataset Gen(int n, uint64_t seed) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(seed);
  return generator.Generate(n, /*shifted=*/false, &rng);
}

/// Small budgets so all ten scorers train in seconds; the round-trip
/// contract is independent of model quality.
pipeline::Hyperparams SmallHp() {
  pipeline::Hyperparams hp;
  hp.neural_epochs = 4;
  hp.restarts = 1;
  hp.cate_epochs = 2;
  hp.forest_trees = 5;
  hp.causal_forest_trees = 5;
  hp.mc_passes = 5;
  return hp;
}

TEST(ScorerRegistry, NamesMatchTable1RowOrder) {
  std::vector<std::string> names =
      pipeline::ScorerRegistry::Global().Names();
  ASSERT_EQ(names.size(), exp::kTable1MethodNames.size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], exp::kTable1MethodNames[i]);
  }
}

TEST(ScorerRegistry, EveryTable1MethodResolvesAndConstructs) {
  pipeline::ScorerRegistry& registry = pipeline::ScorerRegistry::Global();
  pipeline::Hyperparams hp = SmallHp();
  for (const char* name : exp::kTable1MethodNames) {
    SCOPED_TRACE(name);
    StatusOr<std::string> resolved = registry.Resolve(name);
    ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
    EXPECT_EQ(resolved.value(), name);
    StatusOr<std::unique_ptr<pipeline::RoiScorer>> scorer =
        registry.Create(name, hp);
    ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
    EXPECT_EQ(scorer.value()->name(), name);
  }
}

TEST(ScorerRegistry, ResolveIsCaseInsensitive) {
  pipeline::ScorerRegistry& registry = pipeline::ScorerRegistry::Global();
  EXPECT_EQ(registry.Resolve("rdrp").value(), "rDRP");
  EXPECT_EQ(registry.Resolve("drp").value(), "DRP");
  EXPECT_EQ(registry.Resolve("tpm-sl").value(), "TPM-SL");
}

TEST(ScorerRegistry, UnknownNameListsEveryRegisteredMethod) {
  StatusOr<std::string> resolved =
      pipeline::ScorerRegistry::Global().Resolve("nonsense");
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kNotFound);
  const std::string& message = resolved.status().message();
  EXPECT_NE(message.find("unknown method 'nonsense'"), std::string::npos)
      << message;
  for (const char* name : exp::kTable1MethodNames) {
    EXPECT_NE(message.find(name), std::string::npos)
        << "missing " << name << " in: " << message;
  }
}

TEST(PipelineRoundTrip, EveryScorerBitExactAtThreadCounts1And8) {
  RctDataset train = Gen(300, 11);
  RctDataset calib = Gen(120, 12);
  RctDataset test = Gen(80, 13);
  pipeline::Hyperparams hp = SmallHp();

  for (const std::string& name :
       pipeline::ScorerRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    pipeline::Provenance provenance;
    provenance.seed = hp.seed;
    provenance.dataset = "synth:criteo-roundtrip";
    provenance.tool = "pipeline_roundtrip_test";
    StatusOr<pipeline::Pipeline> trained =
        pipeline::Pipeline::Train(name, hp, train, &calib, provenance);
    ASSERT_TRUE(trained.ok()) << trained.status().ToString();
    pipeline::Pipeline pipeline = std::move(trained).value();

    StatusOr<std::vector<double>> direct = pipeline.Score(test.x);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    const std::vector<double>& expected = direct.value();
    ASSERT_EQ(expected.size(), static_cast<size_t>(test.n()));

    std::ostringstream blob;
    ASSERT_TRUE(pipeline.Save(blob).ok());

    for (int threads : {1, 8}) {
      SCOPED_TRACE(threads);
      std::istringstream in(blob.str());
      StatusOr<pipeline::Pipeline> loaded_or = pipeline::Pipeline::Load(in);
      ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
      pipeline::Pipeline loaded = std::move(loaded_or).value();
      EXPECT_EQ(loaded.scorer_name(), name);
      EXPECT_EQ(loaded.feature_dim(), train.x.cols());

      nn::BatchOptions opts;
      opts.batch_size = 32;  // force several row blocks
      opts.num_threads = threads;
      loaded.set_batch_options(opts);

      StatusOr<std::vector<double>> scored = loaded.Score(test.x);
      ASSERT_TRUE(scored.ok()) << scored.status().ToString();
      ASSERT_EQ(scored.value().size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        // EXPECT_EQ, not NEAR: the round-trip contract is bitwise.
        ASSERT_EQ(scored.value()[i], expected[i])
            << "row " << i << " of " << name << " at " << threads
            << " threads";
      }
    }
  }
}

TEST(PipelineRoundTrip, RdrpIntervalsAndMcStatsSurviveReload) {
  RctDataset train = Gen(300, 21);
  RctDataset calib = Gen(120, 22);
  RctDataset test = Gen(60, 23);
  pipeline::Hyperparams hp = SmallHp();

  StatusOr<pipeline::Pipeline> trained =
      pipeline::Pipeline::Train("rDRP", hp, train, &calib, {});
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  pipeline::Pipeline pipeline = std::move(trained).value();
  ASSERT_TRUE(pipeline.scorer().has_intervals());
  ASSERT_TRUE(pipeline.scorer().has_mc_uncertainty());

  std::vector<metrics::Interval> expected =
      pipeline.ScoreIntervals(test.x).value();
  core::McDropoutStats expected_mc =
      pipeline.ScoreMc(test.x, hp.mc_passes, 99).value();

  std::ostringstream blob;
  ASSERT_TRUE(pipeline.Save(blob).ok());
  std::istringstream in(blob.str());
  pipeline::Pipeline loaded =
      std::move(pipeline::Pipeline::Load(in)).value();

  std::vector<metrics::Interval> got =
      loaded.ScoreIntervals(test.x).value();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].lo, expected[i].lo);
    EXPECT_EQ(got[i].hi, expected[i].hi);
  }
  core::McDropoutStats got_mc = loaded.ScoreMc(test.x, hp.mc_passes, 99).value();
  ASSERT_EQ(got_mc.mean.size(), expected_mc.mean.size());
  for (size_t i = 0; i < got_mc.mean.size(); ++i) {
    EXPECT_EQ(got_mc.mean[i], expected_mc.mean[i]);
    EXPECT_EQ(got_mc.stddev[i], expected_mc.stddev[i]);
  }
}

TEST(PipelineRoundTrip, HyperparamsAndProvenanceSurviveReload) {
  RctDataset train = Gen(200, 31);
  pipeline::Hyperparams hp = SmallHp();
  hp.alpha = 0.2;
  hp.seed = 4321;

  pipeline::Provenance provenance;
  provenance.seed = hp.seed;
  provenance.dataset = "synth:criteo n=200 seed=31";
  provenance.git_describe = "test-build";
  provenance.tool = "pipeline_roundtrip_test";

  pipeline::Pipeline pipeline = std::move(pipeline::Pipeline::Train(
                                              "DRP", hp, train,
                                              /*calibration=*/nullptr,
                                              provenance))
                                    .value();
  std::ostringstream blob;
  ASSERT_TRUE(pipeline.Save(blob).ok());
  std::istringstream in(blob.str());
  pipeline::Pipeline loaded =
      std::move(pipeline::Pipeline::Load(in)).value();

  EXPECT_EQ(loaded.hyperparams().alpha, 0.2);
  EXPECT_EQ(loaded.hyperparams().seed, 4321u);
  EXPECT_EQ(loaded.hyperparams().neural_epochs, hp.neural_epochs);
  EXPECT_EQ(loaded.provenance().seed, 4321u);
  EXPECT_EQ(loaded.provenance().dataset, "synth:criteo n=200 seed=31");
  EXPECT_EQ(loaded.provenance().git_describe, "test-build");
  EXPECT_EQ(loaded.provenance().tool, "pipeline_roundtrip_test");
}

TEST(PipelineGuards, ScoreRejectsWrongFeatureDimension) {
  RctDataset train = Gen(200, 41);
  pipeline::Pipeline pipeline =
      std::move(pipeline::Pipeline::Train("DRP", SmallHp(), train, nullptr,
                                          {}))
          .value();
  Matrix wrong(4, train.x.cols() + 2, 0.5);
  StatusOr<std::vector<double>> scored = pipeline.Score(wrong);
  ASSERT_FALSE(scored.ok());
  EXPECT_NE(scored.status().message().find("feature dimension mismatch"),
            std::string::npos)
      << scored.status().ToString();
}

TEST(PipelineGuards, LoadRejectsVersionBumpAndGarbage) {
  {
    std::istringstream in("");
    StatusOr<pipeline::Pipeline> loaded = pipeline::Pipeline::Load(in);
    ASSERT_FALSE(loaded.ok());
  }
  {
    std::istringstream in("roicl-pipeline-v99\nscorer DRP\n");
    StatusOr<pipeline::Pipeline> loaded = pipeline::Pipeline::Load(in);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("unsupported"),
              std::string::npos)
        << loaded.status().ToString();
  }
  {
    std::istringstream in("not-a-pipeline\n");
    StatusOr<pipeline::Pipeline> loaded = pipeline::Pipeline::Load(in);
    ASSERT_FALSE(loaded.ok());
  }
  {
    // v1 (pre-interval-backend) artifacts are a hard version bump, not a
    // silent downgrade.
    std::istringstream in("roicl-pipeline-v1\nscorer DRP\n");
    StatusOr<pipeline::Pipeline> loaded = pipeline::Pipeline::Load(in);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("unsupported"),
              std::string::npos)
        << loaded.status().ToString();
  }
  {
    // Unknown scorer name in an otherwise well-formed manifest.
    std::istringstream in(
        "roicl-pipeline-v2\nscorer NoSuchMethod\nfeature_dim 3\n"
        "provenance.seed 1\nprovenance.dataset d\nprovenance.git g\n"
        "provenance.tool t\nhyperparams seed=1\ninterval_backend none\n"
        "model\n");
    StatusOr<pipeline::Pipeline> loaded = pipeline::Pipeline::Load(in);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("unknown method"),
              std::string::npos)
        << loaded.status().ToString();
  }
}

TEST(PipelineGuards, LoadRejectsBadIntervalBackendSections) {
  const std::string head =
      "roicl-pipeline-v2\nscorer DRP\nfeature_dim 3\n"
      "provenance.seed 1\nprovenance.dataset d\nprovenance.git g\n"
      "provenance.tool t\nhyperparams seed=1\n";
  {
    // A v2 manifest without the interval_backend section is truncated.
    std::istringstream in(head + "model\n");
    StatusOr<pipeline::Pipeline> loaded = pipeline::Pipeline::Load(in);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("interval_backend"),
              std::string::npos)
        << loaded.status().ToString();
  }
  {
    // Backend names must come from the registry.
    std::istringstream in(head + "interval_backend jackknife\nmodel\n");
    StatusOr<pipeline::Pipeline> loaded = pipeline::Pipeline::Load(in);
    ASSERT_FALSE(loaded.ok());
  }
  {
    // Hyperparams and the persisted interval section must agree: a blob
    // stitched together from mismatched halves dies at load, not at
    // prediction time. (hyperparams default interval_backend=split; the
    // section carries a minimal but valid weighted payload.)
    std::istringstream in(head +
                          "interval_backend weighted\n"
                          "roicl-ivb-weighted-v1\n"
                          "0.1 0.0001 1 1 0\n0.5\nmodel\n");
    StatusOr<pipeline::Pipeline> loaded = pipeline::Pipeline::Load(in);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("interval_backend"),
              std::string::npos)
        << loaded.status().ToString();
  }
  {
    // A corrupt backend payload inside an otherwise valid manifest.
    std::istringstream in(head +
                          "interval_backend split\n"
                          "roicl-ivb-split-v1\n"
                          "0.1 0.0001 1 99999999999 0\nmodel\n");
    StatusOr<pipeline::Pipeline> loaded = pipeline::Pipeline::Load(in);
    ASSERT_FALSE(loaded.ok());
  }
}

TEST(PipelineRoundTrip, EveryIntervalBackendSurvivesReloadBitwise) {
  RctDataset train = Gen(300, 61);
  RctDataset calib = Gen(120, 62);
  RctDataset test = Gen(60, 63);
  for (const char* backend_name : core::kIntervalBackendNames) {
    SCOPED_TRACE(backend_name);
    pipeline::Hyperparams hp = SmallHp();
    hp.interval_backend = backend_name;
    StatusOr<pipeline::Pipeline> trained =
        pipeline::Pipeline::Train("rDRP", hp, train, &calib, {});
    ASSERT_TRUE(trained.ok()) << trained.status().ToString();
    pipeline::Pipeline pipeline = std::move(trained).value();
    ASSERT_NE(pipeline.interval_backend(), nullptr);
    ASSERT_EQ(pipeline.interval_backend()->name(), backend_name);

    std::vector<metrics::Interval> expected =
        pipeline.ScoreIntervals(test.x).value();
    std::ostringstream blob;
    ASSERT_TRUE(pipeline.Save(blob).ok());
    std::istringstream in(blob.str());
    StatusOr<pipeline::Pipeline> loaded_or = pipeline::Pipeline::Load(in);
    ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
    pipeline::Pipeline loaded = std::move(loaded_or).value();
    ASSERT_NE(loaded.interval_backend(), nullptr);
    EXPECT_EQ(loaded.interval_backend()->name(), backend_name);
    EXPECT_EQ(loaded.interval_backend()->q_hat(),
              pipeline.interval_backend()->q_hat());

    std::vector<metrics::Interval> got =
        loaded.ScoreIntervals(test.x).value();
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].lo, expected[i].lo) << "row " << i;
      ASSERT_EQ(got[i].hi, expected[i].hi) << "row " << i;
    }
  }
}

TEST(PipelineGuards, TrainRejectsUnknownScorer) {
  RctDataset train = Gen(50, 51);
  StatusOr<pipeline::Pipeline> trained = pipeline::Pipeline::Train(
      "not-a-method", SmallHp(), train, nullptr, {});
  ASSERT_FALSE(trained.ok());
  EXPECT_EQ(trained.status().code(), StatusCode::kNotFound);
}

}  // namespace
