#include <atomic>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace roicl {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(MathUtilTest, SigmoidBasics) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
}

TEST(MathUtilTest, SigmoidExtremeInputsAreFinite) {
  EXPECT_TRUE(std::isfinite(Sigmoid(1e6)));
  EXPECT_TRUE(std::isfinite(Sigmoid(-1e6)));
}

TEST(MathUtilTest, LogitInvertsSigmoid) {
  for (double x : {-5.0, -1.0, 0.0, 0.3, 2.0, 8.0}) {
    EXPECT_NEAR(Logit(Sigmoid(x)), x, 1e-9);
  }
}

TEST(MathUtilTest, LogitClampsBoundary) {
  EXPECT_TRUE(std::isfinite(Logit(0.0)));
  EXPECT_TRUE(std::isfinite(Logit(1.0)));
  EXPECT_LT(Logit(0.0), Logit(1e-6));
  EXPECT_GT(Logit(1.0), Logit(1.0 - 1e-6));
}

TEST(MathUtilTest, SigmoidGradMatchesFiniteDifference) {
  for (double x : {-2.0, 0.0, 1.5}) {
    double h = 1e-6;
    double numeric = (Sigmoid(x + h) - Sigmoid(x - h)) / (2 * h);
    EXPECT_NEAR(SigmoidGrad(Sigmoid(x)), numeric, 1e-8);
  }
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(0, 257, [&hits](int i) { hits[AsSize(i)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  pool.ParallelFor(5, 5, [](int) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&GlobalThreadPool(), &GlobalThreadPool());
  EXPECT_GE(GlobalThreadPool().num_threads(), 1u);
}

}  // namespace
}  // namespace roicl
