#include "core/rank_net.h"

#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "metrics/cost_curve.h"
#include "metrics/qini.h"
#include "synth/synthetic_generator.h"

namespace roicl::core {
namespace {

/// Shared synthetic RCT splits (same pattern as rdrp_test): the ranking
/// scorer trains on the unshifted distribution and is evaluated on the
/// covariate-shifted test split, exactly like the Table-I runs.
class RankNetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    generator_ = new synth::SyntheticGenerator(synth::CriteoSynthConfig());
    Rng rng(31);
    train_ = new RctDataset(generator_->Generate(5000, false, &rng));
    test_ = new RctDataset(generator_->Generate(2500, true, &rng));
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete train_;
    delete test_;
  }

  static RankNetConfig FastConfig() {
    RankNetConfig config;
    config.train.epochs = 12;
    config.restarts = 1;
    return config;
  }

  static synth::SyntheticGenerator* generator_;
  static RctDataset* train_;
  static RctDataset* test_;
};

synth::SyntheticGenerator* RankNetTest::generator_ = nullptr;
RctDataset* RankNetTest::train_ = nullptr;
RctDataset* RankNetTest::test_ = nullptr;

TEST_F(RankNetTest, ProducesFiniteUnitIntervalScores) {
  RankNetModel model(FastConfig());
  EXPECT_FALSE(model.fitted());
  EXPECT_EQ(model.feature_dim(), -1);
  model.Fit(*train_);
  EXPECT_TRUE(model.fitted());
  EXPECT_EQ(model.feature_dim(), train_->x.cols());
  std::vector<double> scores = model.PredictRoi(test_->x);
  ASSERT_EQ(static_cast<int>(scores.size()), test_->n());
  for (double s : scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST_F(RankNetTest, RankingBeatsRandomByAuccAndQini) {
  // The ranking-quality check gets a larger budget than the smoke tests:
  // the pairwise preference directions are noisy single-sample estimates,
  // so the ordering signal needs more passes to emerge.
  RankNetConfig config = FastConfig();
  config.train.epochs = 60;
  config.restarts = 2;
  RankNetModel model(config);
  model.Fit(*train_);
  std::vector<double> scores = model.PredictRoi(test_->x);
  double aucc = metrics::Aucc(scores, *test_);
  double oracle = metrics::OracleAucc(*test_);
  // The pairwise objective only sees the ranking, so the model should
  // recover a meaningful fraction of the oracle ordering even with the
  // fast training budget. A random ranking scores ~0.5. The oracle is
  // only optimal in expectation (AUCC uses realized outcomes), so the
  // upper bound carries finite-sample slack.
  EXPECT_GT(aucc, 0.55);
  EXPECT_LE(aucc, oracle + 0.03);
  EXPECT_GT(metrics::QiniCoefficient(scores, *test_), 0.0);
}

TEST_F(RankNetTest, SaveLoadPredictIsBitwise) {
  RankNetModel model(FastConfig());
  model.Fit(*train_);
  std::vector<double> before = model.PredictRoi(test_->x);

  std::stringstream buffer;
  ASSERT_TRUE(model.Save(buffer).ok());
  StatusOr<RankNetModel> loaded = RankNetModel::Load(buffer, FastConfig());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().feature_dim(), train_->x.cols());

  std::vector<double> after = loaded.value().PredictRoi(test_->x);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << "score diverged at row " << i;
  }
}

TEST_F(RankNetTest, PredictionsAreEngineInvariant) {
  RankNetModel model(FastConfig());
  model.Fit(*train_);
  std::vector<double> reference = model.PredictRoi(test_->x);

  nn::BatchOptions opts;
  opts.batch_size = 17;
  opts.num_threads = 4;
  model.set_predict_options(opts);
  std::vector<double> batched = model.PredictRoi(test_->x);

  ASSERT_EQ(reference.size(), batched.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i], batched[i]);
  }
}

TEST(RankNetLoadTest, RejectsCorruptStreams) {
  {
    std::istringstream empty("");
    StatusOr<RankNetModel> r = RankNetModel::Load(empty);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::istringstream bad_magic("not-a-ranknet 3");
    StatusOr<RankNetModel> r = RankNetModel::Load(bad_magic);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Future format version: rejected with a version message, not parsed.
    std::istringstream future("roicl-ranknet-v9 3");
    StatusOr<RankNetModel> r = RankNetModel::Load(future);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::istringstream truncated("roicl-ranknet-v1\n4\n0.0 0.0 0.0 0.0\n");
    StatusOr<RankNetModel> r = RankNetModel::Load(truncated);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

using RankNetDeathTest = RankNetTest;

TEST_F(RankNetDeathTest, RequiresBothArmsAndFit) {
  RankNetConfig config = FastConfig();
  {
    // All-control dataset: the pairwise transform needs both arms.
    RctDataset all_control = *train_;
    for (auto& t : all_control.treatment) t = 0;
    RankNetModel model(config);
    EXPECT_DEATH(model.Fit(all_control), "both RCT arms");
  }
  {
    RankNetModel model(config);
    EXPECT_DEATH(model.PredictRoi(test_->x), "before Fit");
  }
}

}  // namespace
}  // namespace roicl::core
