#include "core/interval_backend.h"

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/status.h"
#include "core/conformal.h"
#include "linalg/matrix.h"
#include "metrics/coverage.h"

namespace roicl::core {
namespace {

struct CalibrationFixture {
  Matrix x;
  std::vector<double> roi_hat;
  std::vector<double> r_hat;
  std::vector<double> roi_star;
};

/// 20 rows, distinct roi_hat values (so the weighted backend's 10
/// reference quantile bins hold exactly two rows each — the flat-mass
/// reduction below needs equal reference masses), varied stds, scalar
/// roi*.
CalibrationFixture MakeFixture() {
  CalibrationFixture fixture;
  for (int i = 0; i < 20; ++i) {
    fixture.x.AppendRow({0.1 * i, 1.0 - 0.04 * i});
    fixture.roi_hat.push_back(0.30 + 0.02 * i);
    fixture.r_hat.push_back(0.08 + 0.01 * (i % 4));
    fixture.roi_star.push_back(0.5);
  }
  return fixture;
}

std::unique_ptr<IntervalBackend> Calibrated(const std::string& name) {
  StatusOr<std::unique_ptr<IntervalBackend>> backend =
      MakeIntervalBackend(name);
  ROICL_CHECK(backend.ok());
  CalibrationFixture fixture = MakeFixture();
  ROICL_CHECK(backend.value()
                  ->Calibrate(fixture.x, fixture.roi_hat, fixture.r_hat,
                              fixture.roi_star, /*alpha=*/0.2,
                              kDefaultStdFloor)
                  .ok());
  // The served weight variable, row-aligned with the calibration scores.
  backend.value()->SetWeightReference(fixture.roi_hat);
  return std::move(backend).value();
}

/// Save -> Load into a fresh backend of the same name, then assert the
/// persisted calibration state and every serving-path output is the
/// exact same double (17-digit text serialization is lossless).
void ExpectBitwiseRoundtrip(const std::string& name) {
  std::unique_ptr<IntervalBackend> original = Calibrated(name);
  std::stringstream stream;
  ASSERT_TRUE(original->Save(stream).ok()) << name;

  StatusOr<std::unique_ptr<IntervalBackend>> fresh = MakeIntervalBackend(name);
  ASSERT_TRUE(fresh.ok());
  std::unique_ptr<IntervalBackend> loaded = std::move(fresh).value();
  ASSERT_TRUE(loaded->Load(stream).ok()) << name;

  EXPECT_EQ(loaded->name(), name);
  EXPECT_TRUE(loaded->calibrated());
  EXPECT_EQ(loaded->q_hat(), original->q_hat());
  EXPECT_EQ(loaded->alpha(), original->alpha());
  EXPECT_EQ(loaded->std_floor(), original->std_floor());
  EXPECT_EQ(loaded->calibration_scores(), original->calibration_scores());
  EXPECT_EQ(loaded->weight_reference(), original->weight_reference());
  EXPECT_EQ(loaded->WeightBins(), original->WeightBins());

  CalibrationFixture fixture = MakeFixture();
  std::vector<double> aux_lo_a;
  std::vector<double> aux_hi_a;
  std::vector<double> aux_lo_b;
  std::vector<double> aux_hi_b;
  ASSERT_TRUE(original->StreamAux(fixture.x, &aux_lo_a, &aux_hi_a).ok());
  ASSERT_TRUE(loaded->StreamAux(fixture.x, &aux_lo_b, &aux_hi_b).ok());
  EXPECT_EQ(aux_lo_a, aux_lo_b);
  EXPECT_EQ(aux_hi_a, aux_hi_b);
  for (std::size_t i = 0; i < fixture.roi_hat.size(); ++i) {
    EXPECT_EQ(loaded->StreamScore(fixture.roi_hat[i], fixture.r_hat[i], 0.5,
                                  aux_lo_b[i], aux_hi_b[i]),
              original->StreamScore(fixture.roi_hat[i], fixture.r_hat[i],
                                    0.5, aux_lo_a[i], aux_hi_a[i]))
        << name << " row " << i;
  }
  std::vector<metrics::Interval> a = original->Intervals(
      fixture.x, fixture.roi_hat, fixture.r_hat, original->q_hat());
  std::vector<metrics::Interval> b = loaded->Intervals(
      fixture.x, fixture.roi_hat, fixture.r_hat, loaded->q_hat());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lo, b[i].lo) << name << " row " << i;
    EXPECT_EQ(a[i].hi, b[i].hi) << name << " row " << i;
  }
}

TEST(IntervalBackend, RegistryResolvesEveryNameAndRejectsUnknown) {
  for (const char* name : kIntervalBackendNames) {
    StatusOr<std::unique_ptr<IntervalBackend>> backend =
        MakeIntervalBackend(name);
    ASSERT_TRUE(backend.ok()) << name;
    EXPECT_EQ(backend.value()->name(), name);
    EXPECT_FALSE(backend.value()->calibrated());
    EXPECT_TRUE(IsIntervalBackendName(name));
  }
  StatusOr<std::unique_ptr<IntervalBackend>> unknown =
      MakeIntervalBackend("jackknife");
  EXPECT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find(IntervalBackendNamesCsv()),
            std::string::npos);
  EXPECT_FALSE(IsIntervalBackendName("jackknife"));
  EXPECT_FALSE(IsIntervalBackendName(""));
  for (const char* name : kIntervalBackendNames) {
    EXPECT_NE(IntervalBackendNamesCsv().find(name), std::string::npos);
  }
}

TEST(IntervalBackend, BitwiseRoundtripSplit) { ExpectBitwiseRoundtrip("split"); }

TEST(IntervalBackend, BitwiseRoundtripWeighted) {
  ExpectBitwiseRoundtrip("weighted");
  // The weighted fallback must survive the roundtrip too: same skewed
  // live mass, bitwise-equal repaired quantile.
  std::unique_ptr<IntervalBackend> original = Calibrated("weighted");
  std::stringstream stream;
  ASSERT_TRUE(original->Save(stream).ok());
  StatusOr<std::unique_ptr<IntervalBackend>> loaded =
      MakeIntervalBackend("weighted");
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value()->Load(stream).ok());
  ASSERT_GT(loaded.value()->WeightBins(), 0u);
  std::vector<double> skewed(original->WeightBins(), 0.0);
  skewed.back() = 64.0;
  StatusOr<double> a = original->FallbackQHat(0.2, skewed);
  StatusOr<double> b = loaded.value()->FallbackQHat(0.2, skewed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(IntervalBackend, BitwiseRoundtripCqr) { ExpectBitwiseRoundtrip("cqr"); }

TEST(IntervalBackend, LoadRejectsWrongMagicAndTruncation) {
  for (const char* name : kIntervalBackendNames) {
    StatusOr<std::unique_ptr<IntervalBackend>> backend =
        MakeIntervalBackend(name);
    ASSERT_TRUE(backend.ok());
    std::istringstream wrong("roicl-ivb-nonsense-v1\n");
    Status status = backend.value()->Load(wrong);
    EXPECT_FALSE(status.ok()) << name;
    EXPECT_NE(status.message().find("magic"), std::string::npos) << name;
    std::istringstream empty("");
    EXPECT_FALSE(backend.value()->Load(empty).ok()) << name;
  }
  // A valid header with the body chopped off must fail cleanly, not crash.
  std::unique_ptr<IntervalBackend> calibrated = Calibrated("split");
  std::stringstream stream;
  ASSERT_TRUE(calibrated->Save(stream).ok());
  std::string text = stream.str();
  std::istringstream truncated(text.substr(0, text.size() / 2));
  StatusOr<std::unique_ptr<IntervalBackend>> fresh =
      MakeIntervalBackend("split");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value()->Load(truncated).ok());
}

TEST(IntervalBackend, SaveBeforeCalibrateIsAnError) {
  for (const char* name : kIntervalBackendNames) {
    StatusOr<std::unique_ptr<IntervalBackend>> backend =
        MakeIntervalBackend(name);
    ASSERT_TRUE(backend.ok());
    std::stringstream stream;
    EXPECT_FALSE(backend.value()->Save(stream).ok()) << name;
  }
}

TEST(IntervalBackend, WeightedCalibrationMatchesSplitBitwise) {
  // Uniform weights at calibration time: the weighted backend's scores
  // and quantile are the split backend's, bit for bit. The weighting
  // only enters the label-free fallback.
  std::unique_ptr<IntervalBackend> split = Calibrated("split");
  std::unique_ptr<IntervalBackend> weighted = Calibrated("weighted");
  EXPECT_EQ(weighted->q_hat(), split->q_hat());
  EXPECT_EQ(weighted->calibration_scores(), split->calibration_scores());
}

TEST(IntervalBackend, WeightedUniformLiveMassMatchesUnweightedQuantile) {
  std::unique_ptr<IntervalBackend> weighted = Calibrated("weighted");
  ASSERT_GT(weighted->WeightBins(), 0u);
  double unweighted =
      ConformalScoreQuantile(weighted->calibration_scores(), 0.2);
  // No live mass -> uniform likelihood ratios -> the exact unweighted
  // ceil((1-alpha)(n+1)) rank.
  StatusOr<double> empty = weighted->FallbackQHat(0.2, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value(), unweighted);
  // Flat live counts over non-degenerate reference bins: every ratio is
  // exactly 1.0, same reduction.
  std::vector<double> flat(weighted->WeightBins(), 5.0);
  StatusOr<double> uniform = weighted->FallbackQHat(0.2, flat);
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(uniform.value(), unweighted);
  // Mass concentrated in the top bin up-weights large scores: the
  // repaired quantile can only widen.
  std::vector<double> skewed(weighted->WeightBins(), 0.0);
  skewed.back() = 64.0;
  StatusOr<double> shifted = weighted->FallbackQHat(0.2, skewed);
  ASSERT_TRUE(shifted.ok());
  EXPECT_GE(shifted.value(), unweighted);
}

TEST(IntervalBackend, WeightedFallbackValidatesItsInputs) {
  std::unique_ptr<IntervalBackend> weighted = Calibrated("weighted");
  EXPECT_FALSE(weighted->FallbackQHat(0.0, {}).ok());
  EXPECT_FALSE(weighted->FallbackQHat(1.0, {}).ok());
  std::vector<double> wrong_size(3, 1.0);
  EXPECT_FALSE(weighted->FallbackQHat(0.2, wrong_size).ok());
  // An unreachable level reports +inf (the caller's max-score
  // convention), not an error.
  std::vector<double> flat(weighted->WeightBins(), 5.0);
  StatusOr<double> starved = weighted->FallbackQHat(0.01, flat);
  ASSERT_TRUE(starved.ok());
  EXPECT_TRUE(std::isinf(starved.value()));
  // Without a weight reference there is nothing to bin against.
  StatusOr<std::unique_ptr<IntervalBackend>> bare =
      MakeIntervalBackend("weighted");
  ASSERT_TRUE(bare.ok());
  CalibrationFixture fixture = MakeFixture();
  ASSERT_TRUE(bare.value()
                  ->Calibrate(fixture.x, fixture.roi_hat, fixture.r_hat,
                              fixture.roi_star, 0.2, kDefaultStdFloor)
                  .ok());
  EXPECT_EQ(bare.value()->WeightBins(), 0u);
  EXPECT_FALSE(bare.value()->FallbackQHat(0.2, {}).ok());
}

TEST(IntervalBackend, SplitHasNoWeightedFallback) {
  std::unique_ptr<IntervalBackend> split = Calibrated("split");
  EXPECT_EQ(split->WeightBins(), 0u);
  EXPECT_FALSE(split->FallbackQHat(0.2, {}).ok());
}

TEST(IntervalBackend, InitFromStateTransfersSplitSemantics) {
  // split <-> weighted share Eq.(3) score semantics, so the stateless
  // artifact rebind transfers the full calibration bitwise.
  std::unique_ptr<IntervalBackend> split = Calibrated("split");
  StatusOr<std::unique_ptr<IntervalBackend>> weighted =
      MakeIntervalBackend("weighted");
  ASSERT_TRUE(weighted.ok());
  ASSERT_TRUE(weighted.value()->InitFromState(*split).ok());
  EXPECT_TRUE(weighted.value()->calibrated());
  EXPECT_EQ(weighted.value()->q_hat(), split->q_hat());
  EXPECT_EQ(weighted.value()->calibration_scores(),
            split->calibration_scores());
  // The weight reference travels with the state, so the rebound backend
  // has working bins immediately.
  EXPECT_GT(weighted.value()->WeightBins(), 0u);
  // cqr scores are conformity E-values, not Eq.(3) scores: both
  // directions of a stateless rebind must refuse.
  std::unique_ptr<IntervalBackend> cqr = Calibrated("cqr");
  StatusOr<std::unique_ptr<IntervalBackend>> into_cqr =
      MakeIntervalBackend("cqr");
  ASSERT_TRUE(into_cqr.ok());
  EXPECT_FALSE(into_cqr.value()->InitFromState(*split).ok());
  StatusOr<std::unique_ptr<IntervalBackend>> from_cqr =
      MakeIntervalBackend("split");
  ASSERT_TRUE(from_cqr.ok());
  EXPECT_FALSE(from_cqr.value()->InitFromState(*cqr).ok());
}

TEST(IntervalBackend, CalibrateValidatesItsArguments) {
  CalibrationFixture fixture = MakeFixture();
  for (const char* name : kIntervalBackendNames) {
    StatusOr<std::unique_ptr<IntervalBackend>> backend =
        MakeIntervalBackend(name);
    ASSERT_TRUE(backend.ok());
    std::vector<double> short_roi_hat(fixture.roi_hat.begin(),
                                      fixture.roi_hat.end() - 1);
    EXPECT_FALSE(backend.value()
                     ->Calibrate(fixture.x, short_roi_hat, fixture.r_hat,
                                 fixture.roi_star, 0.2, kDefaultStdFloor)
                     .ok())
        << name;
    EXPECT_FALSE(backend.value()
                     ->Calibrate(fixture.x, fixture.roi_hat, fixture.r_hat,
                                 fixture.roi_star, 1.5, kDefaultStdFloor)
                     .ok())
        << name;
  }
  // cqr needs enough rows for its fit/calibrate split.
  StatusOr<std::unique_ptr<IntervalBackend>> cqr = MakeIntervalBackend("cqr");
  ASSERT_TRUE(cqr.ok());
  Matrix tiny;
  tiny.AppendRow({1.0, 2.0});
  Status status = cqr.value()->Calibrate(tiny, {0.5}, {0.1}, {0.5}, 0.2,
                                         kDefaultStdFloor);
  EXPECT_FALSE(status.ok());
}

TEST(IntervalBackend, CqrCoverageContractMatchesScoreThreshold) {
  // The monitor's covered <=> score <= q_hat check must coincide with
  // roi* lying inside the served interval, for cqr exactly like split.
  std::unique_ptr<IntervalBackend> cqr = Calibrated("cqr");
  CalibrationFixture fixture = MakeFixture();
  std::vector<double> aux_lo;
  std::vector<double> aux_hi;
  ASSERT_TRUE(cqr->StreamAux(fixture.x, &aux_lo, &aux_hi).ok());
  std::vector<metrics::Interval> intervals = cqr->Intervals(
      fixture.x, fixture.roi_hat, fixture.r_hat, cqr->q_hat());
  for (std::size_t i = 0; i < fixture.roi_hat.size(); ++i) {
    double score = cqr->StreamScore(fixture.roi_hat[i], fixture.r_hat[i],
                                    0.5, aux_lo[i], aux_hi[i]);
    bool by_score = score <= cqr->q_hat();
    bool by_interval = intervals[i].lo <= 0.5 && 0.5 <= intervals[i].hi;
    EXPECT_EQ(by_score, by_interval) << "row " << i;
  }
}

}  // namespace
}  // namespace roicl::core
