#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "metrics/cost_curve.h"
#include "metrics/coverage.h"
#include "metrics/qini.h"
#include "synth/synthetic_generator.h"

namespace roicl::metrics {
namespace {

RctDataset MakeEvaluationRct(int n, uint64_t seed) {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(seed);
  return generator.Generate(n, false, &rng);
}

TEST(CostCurveTest, StartsAtOriginEndsAtTotals) {
  RctDataset d = MakeEvaluationRct(3000, 1);
  std::vector<double> scores(AsSize(d.n()));
  Rng rng(2);
  for (double& s : scores) s = rng.Uniform();
  CostCurve curve = ComputeCostCurve(scores, d);
  ASSERT_EQ(curve.points.size(), static_cast<size_t>(d.n() + 1));
  EXPECT_EQ(curve.points.front().k, 0);
  EXPECT_DOUBLE_EQ(curve.points.front().cumulative_cost, 0.0);
  EXPECT_DOUBLE_EQ(curve.points.back().cumulative_cost, curve.total_cost);
  EXPECT_DOUBLE_EQ(curve.points.back().cumulative_revenue,
                   curve.total_revenue);
  EXPECT_GT(curve.total_cost, 0.0);
  EXPECT_GT(curve.total_revenue, 0.0);
}

TEST(AuccTest, RandomScoresNearHalf) {
  RctDataset d = MakeEvaluationRct(20000, 3);
  Rng rng(4);
  std::vector<double> scores(AsSize(d.n()));
  for (double& s : scores) s = rng.Uniform();
  EXPECT_NEAR(Aucc(scores, d), 0.5, 0.05);
}

TEST(AuccTest, OracleBeatsRandomBeatsAntiOracle) {
  RctDataset d = MakeEvaluationRct(20000, 5);
  std::vector<double> oracle(AsSize(d.n())), anti(AsSize(d.n())),
      random_scores(AsSize(d.n()));
  Rng rng(6);
  for (int i = 0; i < d.n(); ++i) {
    oracle[AsSize(i)] = d.TrueRoi(i);
    anti[AsSize(i)] = -oracle[AsSize(i)];
    random_scores[AsSize(i)] = rng.Uniform();
  }
  double aucc_oracle = Aucc(oracle, d);
  double aucc_random = Aucc(random_scores, d);
  double aucc_anti = Aucc(anti, d);
  EXPECT_GT(aucc_oracle, aucc_random + 0.03);
  EXPECT_GT(aucc_random, aucc_anti + 0.03);
  EXPECT_DOUBLE_EQ(aucc_oracle, OracleAucc(d));
}

TEST(AuccTest, InvariantToMonotoneTransformOfScores) {
  RctDataset d = MakeEvaluationRct(5000, 7);
  std::vector<double> scores(AsSize(d.n())), transformed(AsSize(d.n()));
  for (int i = 0; i < d.n(); ++i) {
    scores[AsSize(i)] = d.TrueRoi(i);
    transformed[AsSize(i)] = std::exp(3.0 * scores[AsSize(i)]) + 5.0;
  }
  EXPECT_DOUBLE_EQ(Aucc(scores, d), Aucc(transformed, d));
}

TEST(AuccTest, DegenerateOutcomesGiveHalf) {
  // All-zero outcomes: no measurable lift, AUCC defined as 0.5.
  RctDataset d;
  d.x = Matrix(10, 1);
  for (int i = 0; i < 10; ++i) {
    d.treatment.push_back(i % 2);
    d.y_revenue.push_back(0.0);
    d.y_cost.push_back(0.0);
  }
  std::vector<double> scores(10, 0.5);
  EXPECT_DOUBLE_EQ(Aucc(scores, d), 0.5);
}

TEST(QiniTest, OracleRevenueRankingBeatsRandom) {
  RctDataset d = MakeEvaluationRct(20000, 8);
  std::vector<double> oracle(AsSize(d.n())), random_scores(AsSize(d.n()));
  Rng rng(9);
  for (int i = 0; i < d.n(); ++i) {
    oracle[AsSize(i)] = d.true_tau_r[AsSize(i)];
    random_scores[AsSize(i)] = rng.Uniform();
  }
  EXPECT_GT(QiniCoefficient(oracle, d), QiniCoefficient(random_scores, d));
  EXPECT_NEAR(QiniCoefficient(random_scores, d), 0.0, 0.05);
}

TEST(IntervalTest, ContainsAndWidth) {
  Interval interval{0.2, 0.6};
  EXPECT_TRUE(interval.Contains(0.2));
  EXPECT_TRUE(interval.Contains(0.6));
  EXPECT_TRUE(interval.Contains(0.4));
  EXPECT_FALSE(interval.Contains(0.61));
  EXPECT_DOUBLE_EQ(interval.width(), 0.4);
}

TEST(EvaluateCoverageTest, CountsCorrectly) {
  std::vector<Interval> intervals = {{0.0, 1.0}, {0.4, 0.5}, {0.9, 1.1}};
  std::vector<double> targets = {0.5, 0.6, 1.0};
  CoverageReport report = EvaluateCoverage(intervals, targets);
  EXPECT_EQ(report.n, 3);
  EXPECT_NEAR(report.coverage, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.mean_width, (1.0 + 0.1 + 0.2) / 3.0, 1e-12);
}

}  // namespace
}  // namespace roicl::metrics
