#include "core/conformal.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/metrics.h"

namespace roicl::core {
namespace {

TEST(ConformalScoresTest, MatchesFormula) {
  std::vector<double> roi_hat = {0.5, 0.3};
  std::vector<double> r_hat = {0.1, 0.2};
  std::vector<double> scores = ConformalScores(0.4, roi_hat, r_hat);
  EXPECT_NEAR(scores[0], 1.0, 1e-12);   // |0.4-0.5|/0.1
  EXPECT_NEAR(scores[1], 0.5, 1e-12);   // |0.4-0.3|/0.2
}

TEST(ConformalScoresTest, FlooredStdAvoidsInfinity) {
  std::vector<double> scores =
      ConformalScores(0.4, {0.5}, {0.0}, /*std_floor=*/1e-6);
  EXPECT_TRUE(std::isfinite(scores[0]));
  EXPECT_NEAR(scores[0], 0.1 / 1e-6, 1.0);
}

TEST(ConformalIntervalsTest, SymmetricAroundPoint) {
  std::vector<metrics::Interval> intervals =
      ConformalIntervals({0.5, 0.2}, {0.1, 0.05}, /*q_hat=*/2.0);
  EXPECT_NEAR(intervals[0].lo, 0.3, 1e-12);
  EXPECT_NEAR(intervals[0].hi, 0.7, 1e-12);
  EXPECT_NEAR(intervals[1].width(), 0.2, 1e-12);
}

// The split-conformal coverage property (Eq. 4): calibrate on n draws,
// test on fresh exchangeable draws; empirical coverage of the target must
// be >= 1 - alpha (up to finite-sample fluctuation).
class ConformalCoverage
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ConformalCoverage, CoversExchangeableTestPoints) {
  auto [n_calib, alpha] = GetParam();
  Rng rng(static_cast<uint64_t>(n_calib * 31 + alpha * 1000));
  const int kTest = 4000;
  const double kTarget = 0.5;  // the "true value" every sample shares

  // Heteroscedastic predictor: roi_hat_i = target + sigma_i * noise,
  // r_hat_i an imperfect but correlated uncertainty estimate.
  auto draw = [&](std::vector<double>* roi_hat, std::vector<double>* r_hat,
                  int count) {
    for (int i = 0; i < count; ++i) {
      double sigma = 0.02 + 0.1 * rng.Uniform();
      roi_hat->push_back(kTarget + rng.Normal(0.0, sigma));
      r_hat->push_back(sigma * (0.8 + 0.4 * rng.Uniform()));
    }
  };
  std::vector<double> calib_roi, calib_r;
  draw(&calib_roi, &calib_r, n_calib);
  std::vector<double> scores = ConformalScores(kTarget, calib_roi, calib_r);
  double q_hat = ConformalScoreQuantile(scores, alpha);
  ASSERT_TRUE(std::isfinite(q_hat));

  std::vector<double> test_roi, test_r;
  draw(&test_roi, &test_r, kTest);
  std::vector<metrics::Interval> intervals =
      ConformalIntervals(test_roi, test_r, q_hat);
  int covered = 0;
  for (const auto& interval : intervals) {
    covered += interval.Contains(kTarget);
  }
  double coverage = static_cast<double>(covered) / kTest;
  // Allow 3 standard errors of slack below the target.
  double slack = 3.0 * std::sqrt(alpha * (1 - alpha) / n_calib) + 0.01;
  EXPECT_GE(coverage, 1.0 - alpha - slack)
      << "n_calib=" << n_calib << " alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConformalCoverage,
    ::testing::Combine(::testing::Values(50, 200, 1000),
                       ::testing::Values(0.05, 0.1, 0.2, 0.4)));

TEST(ConformalQuantileTest, MonotoneInAlpha) {
  Rng rng(5);
  std::vector<double> scores(500);
  for (double& s : scores) s = rng.Exponential(1.0);
  double prev = std::numeric_limits<double>::infinity();
  for (double alpha : {0.01, 0.05, 0.1, 0.3, 0.5, 0.9}) {
    double q = ConformalScoreQuantile(scores, alpha);
    EXPECT_LE(q, prev) << "alpha=" << alpha;
    prev = q;
  }
}

TEST(ConformalQuantileTest, StarvedCalibrationCountsAndReturnsInfinity) {
  // ceil((1 - 0.1) * (n + 1)) > n for n = 3, so the quantile degenerates
  // to +inf (trivially covering intervals). That must be observable: the
  // conformal.qhat_infinite counter advances once per occurrence.
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("conformal.qhat_infinite");
  counter->Reset();
  double q = ConformalScoreQuantile({1.0, 2.0, 3.0}, 0.1);
  EXPECT_TRUE(std::isinf(q));
  EXPECT_GT(q, 0.0);
  EXPECT_EQ(counter->value(), 1u);
  // A healthy set leaves the counter alone.
  std::vector<double> scores(100);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<double>(i);
  }
  EXPECT_TRUE(std::isfinite(ConformalScoreQuantile(scores, 0.1)));
  EXPECT_EQ(counter->value(), 1u);
}

TEST(WindowedConformalQuantileTest, UsesOnlyTheMostRecentScores) {
  // Arrival order: 100 small scores, then 100 large ones. A window of
  // 100 must quantile only the large tail; the full set mixes both.
  std::vector<double> scores;
  for (int i = 0; i < 100; ++i) scores.push_back(0.01 * i);
  for (int i = 0; i < 100; ++i) scores.push_back(10.0 + 0.01 * i);
  double windowed = WindowedConformalScoreQuantile(scores, 100, 0.1);
  EXPECT_GE(windowed, 10.0) << "old scores leaked into the window";
  EXPECT_EQ(windowed, ConformalScoreQuantile(
                          {scores.begin() + 100, scores.end()}, 0.1));
  // window = 0 and window >= n both mean "use everything".
  EXPECT_EQ(WindowedConformalScoreQuantile(scores, 0, 0.1),
            ConformalScoreQuantile(scores, 0.1));
  EXPECT_EQ(WindowedConformalScoreQuantile(scores, 5000, 0.1),
            ConformalScoreQuantile(scores, 0.1));
  // A starved window degenerates to +inf like the full-set quantile.
  EXPECT_TRUE(std::isinf(WindowedConformalScoreQuantile(scores, 3, 0.1)));
}

}  // namespace
}  // namespace roicl::core
