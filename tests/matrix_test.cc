#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace roicl {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(1, 2) = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowAndColExtraction) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, SelectRows) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  Matrix sub = m.SelectRows({2, 0, 2});
  EXPECT_EQ(sub.rows(), 3);
  EXPECT_DOUBLE_EQ(sub(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sub(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(sub(2, 1), 6.0);
}

TEST(MatrixTest, Transposed) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{10, 20}, {30, 40}};
  a += b;
  EXPECT_DOUBLE_EQ(a(1, 1), 44.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 4.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
}

TEST(MatrixTest, AppendRow) {
  Matrix m;
  m.AppendRow({1.0, 2.0});
  m.AppendRow({3.0, 4.0});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatmulTest, KnownProduct) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  Matrix c = Matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatmulTest, IdentityIsNeutral) {
  Matrix a = {{1, 2, 3}, {4, 5, 6}};
  Matrix c = Matmul(a, Matrix::Identity(3));
  for (int r = 0; r < 2; ++r) {
    for (int col = 0; col < 3; ++col) {
      EXPECT_DOUBLE_EQ(c(r, col), a(r, col));
    }
  }
}

TEST(MatvecTest, KnownProduct) {
  Matrix a = {{1, 2}, {3, 4}};
  std::vector<double> y = Matvec(a, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(DotTest, Basics) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(ColumnSumsTest, Basics) {
  Matrix a = {{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(ColumnSums(a), (std::vector<double>{9.0, 12.0}));
}

TEST(StackTest, HStackAndVStack) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5}, {6}};
  Matrix h = HStack(a, b);
  EXPECT_EQ(h.rows(), 2);
  EXPECT_EQ(h.cols(), 3);
  EXPECT_DOUBLE_EQ(h(1, 2), 6.0);

  Matrix c = {{7, 8}};
  Matrix v = VStack(a, c);
  EXPECT_EQ(v.rows(), 3);
  EXPECT_DOUBLE_EQ(v(2, 1), 8.0);
}

TEST(StackTest, VStackWithEmpty) {
  Matrix a = {{1, 2}};
  Matrix empty;
  Matrix v = VStack(a, empty);
  EXPECT_EQ(v.rows(), 1);
}

}  // namespace
}  // namespace roicl
