#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/row_source.h"
#include "alloc/streaming.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "core/greedy.h"

/// \file
/// The acceptance mechanism for the streaming allocator: property tests
/// proving the sharded streaming selection is *bitwise identical* to the
/// in-memory reference greedy (core::GreedyAllocate, stop variant) —
/// same selected indices in the same order, same floating-point spend —
/// across shard counts, chunk sizes, and duplicate-ROI-key inputs; and
/// that the dual-threshold mode matches greedy when its gap is zero and
/// reports a sound gap otherwise.

namespace roicl::alloc {
namespace {

StreamingResult MustAllocate(RowSource* source, double budget,
                             const StreamingOptions& options) {
  StatusOr<StreamingResult> result =
      StreamingAllocate(source, budget, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : StreamingResult{};
}

/// Bitwise equivalence: identical selection sequence and identical
/// floating-point spend (EXPECT_EQ on doubles is exact equality).
void ExpectBitwiseEqual(const StreamingResult& streaming,
                        const core::AllocationResult& reference) {
  ASSERT_EQ(streaming.selected.size(), reference.selected.size());
  for (size_t i = 0; i < reference.selected.size(); ++i) {
    EXPECT_EQ(streaming.selected[i],
              static_cast<int64_t>(reference.selected[i]))
        << "position " << i;
  }
  EXPECT_EQ(streaming.spent, reference.spent);
}

/// Random instance with deliberately duplicated ROI keys: scores come
/// from a 12-value grid, so collisions are dense and the documented
/// (roi, index) total order is what the equivalence actually exercises.
void MakeInstance(uint64_t seed, int n, std::vector<double>* roi,
                  std::vector<double>* cost) {
  Rng rng(seed);
  roi->resize(AsSize(n));
  cost->resize(AsSize(n));
  for (int i = 0; i < n; ++i) {
    (*roi)[AsSize(i)] = 0.05 + 0.075 * static_cast<double>(rng.UniformInt(12));
    (*cost)[AsSize(i)] = rng.Uniform(0.2, 2.0);
  }
}

// ---------------------------------------------------------------------
// StreamingSmoke.*: the build-matrix smoke subset (check_build_matrix.sh
// runs exactly this suite in every compiler/profile config).
// ---------------------------------------------------------------------

TEST(StreamingSmoke, GreedyMatchesReferenceOnFixedInstance) {
  // Duplicate ROI keys (0.5 three times) across shard boundaries.
  std::vector<double> roi = {0.5, 0.9, 0.5, 0.3, 0.5, 0.7, 0.1, 0.9};
  std::vector<double> cost = {1.0, 0.5, 1.5, 2.0, 0.5, 1.0, 0.3, 0.7};
  core::AllocationResult reference =
      core::GreedyAllocate(roi, cost, 3.0, /*skip_unaffordable=*/false);
  StreamingOptions options;
  options.num_shards = 3;
  VectorRowSource source(roi, cost, /*chunk_rows=*/4);
  StreamingResult streaming = MustAllocate(&source, 3.0, options);
  ExpectBitwiseEqual(streaming, reference);
}

TEST(StreamingSmoke, DualModeIsFeasibleAndReportsGap) {
  std::vector<double> roi;
  std::vector<double> cost;
  MakeInstance(7, 64, &roi, &cost);
  StreamingOptions options;
  options.mode = AllocMode::kDual;
  options.num_shards = 2;
  VectorRowSource source(roi, cost, /*chunk_rows=*/16);
  StreamingResult result = MustAllocate(&source, 8.0, options);
  EXPECT_LE(result.spent, 8.0);
  EXPECT_GE(result.dual_gap, -1e-9);
  EXPECT_LE(result.value, result.dual_upper_bound + 1e-9);
}

// ---------------------------------------------------------------------
// Property battery: bitwise equivalence across shards/chunks/instances.
// ---------------------------------------------------------------------

class StreamingEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingEquivalence, BitwiseMatchesInMemoryGreedy) {
  Rng rng(GetParam() * 7919 + 1);
  int n = static_cast<int>(rng.UniformInt(200));
  std::vector<double> roi;
  std::vector<double> cost;
  MakeInstance(GetParam(), n, &roi, &cost);
  double budget = rng.Uniform(0.0, 0.4 * static_cast<double>(n) + 1.0);
  core::AllocationResult reference =
      core::GreedyAllocate(roi, cost, budget, /*skip_unaffordable=*/false);
  for (int shards : {1, 2, 3, 8}) {
    for (int chunk_rows : {1, 7, 64}) {
      StreamingOptions options;
      options.num_shards = shards;
      VectorRowSource source(roi, cost, chunk_rows);
      StreamingResult streaming = MustAllocate(&source, budget, options);
      ExpectBitwiseEqual(streaming, reference);
      EXPECT_LE(streaming.peak_memory_bytes, options.memory_cap_bytes)
          << "shards=" << shards << " chunk_rows=" << chunk_rows;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, StreamingEquivalence,
                         ::testing::Range<uint64_t>(1, 41));

TEST(StreamingEquivalence, ThousandDuplicateKeysAcrossShards) {
  // 1000 rows sharing one ROI key: ranking is decided purely by the
  // documented index tie-break, the hardest case for reconciliation.
  std::vector<double> roi(1000, 0.5);
  std::vector<double> cost(1000);
  Rng rng(99);
  for (double& c : cost) c = rng.Uniform(0.2, 2.0);
  core::AllocationResult reference =
      core::GreedyAllocate(roi, cost, 100.0, /*skip_unaffordable=*/false);
  for (int shards : {1, 2, 3, 8}) {
    StreamingOptions options;
    options.num_shards = shards;
    VectorRowSource source(roi, cost, /*chunk_rows=*/37);
    StreamingResult streaming = MustAllocate(&source, 100.0, options);
    ExpectBitwiseEqual(streaming, reference);
  }
}

TEST(StreamingEquivalence, ParallelShardsMatchSequential) {
  std::vector<double> roi;
  std::vector<double> cost;
  MakeInstance(1234, 500, &roi, &cost);
  StreamingOptions sequential;
  sequential.num_shards = 8;
  VectorRowSource source_a(roi, cost, /*chunk_rows=*/64);
  StreamingResult a = MustAllocate(&source_a, 40.0, sequential);
  StreamingOptions parallel = sequential;
  parallel.parallel_shards = true;
  VectorRowSource source_b(roi, cost, /*chunk_rows=*/64);
  StreamingResult b = MustAllocate(&source_b, 40.0, parallel);
  ASSERT_EQ(a.selected.size(), b.selected.size());
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.spent, b.spent);
}

// ---------------------------------------------------------------------
// Dual-threshold mode.
// ---------------------------------------------------------------------

TEST(DualThreshold, MatchesGreedyWhenGapIsZero) {
  // Unit costs, well-separated ROI keys, budget exactly k: the threshold
  // solution IS the greedy top-k and the Lagrangian gap vanishes.
  std::vector<double> roi = {0.90, 0.82, 0.74, 0.66, 0.58,
                             0.50, 0.42, 0.34, 0.26, 0.18};
  std::vector<double> cost(roi.size(), 1.0);
  double budget = 4.0;
  core::AllocationResult reference =
      core::GreedyAllocate(roi, cost, budget, /*skip_unaffordable=*/false);
  StreamingOptions options;
  options.mode = AllocMode::kDual;
  options.num_shards = 2;
  VectorRowSource source(roi, cost, /*chunk_rows=*/3);
  StreamingResult dual = MustAllocate(&source, budget, options);
  EXPECT_NEAR(dual.dual_gap, 0.0, 1e-9);
  // Same selected set (dual emits in index order; compare as sets).
  std::vector<int64_t> got = dual.selected;
  std::sort(got.begin(), got.end());
  std::vector<int64_t> want(reference.selected.begin(),
                            reference.selected.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  EXPECT_EQ(dual.spent, reference.spent);
}

class DualSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DualSoundness, FeasibleAndBoundedByCertificate) {
  Rng rng(GetParam() * 104729 + 5);
  int n = 1 + static_cast<int>(rng.UniformInt(300));
  std::vector<double> roi;
  std::vector<double> cost;
  MakeInstance(GetParam() + 1000, n, &roi, &cost);
  double budget = rng.Uniform(0.0, 0.3 * static_cast<double>(n) + 1.0);
  StreamingOptions options;
  options.mode = AllocMode::kDual;
  options.num_shards = 3;
  VectorRowSource source(roi, cost, /*chunk_rows=*/32);
  StreamingResult dual = MustAllocate(&source, budget, options);
  // Hard feasibility: never spend past the budget, no epsilon.
  EXPECT_LE(dual.spent, budget);
  // The Lagrangian certificate really bounds the achieved value, so the
  // reported gap is a sound optimality bound.
  EXPECT_GE(dual.dual_gap, -1e-9);
  EXPECT_LE(dual.value, dual.dual_upper_bound + 1e-9);
  // The reference greedy value never beats the certificate either.
  core::AllocationResult reference =
      core::GreedyAllocate(roi, cost, budget, /*skip_unaffordable=*/false);
  double reference_value = 0.0;
  for (int i : reference.selected) {
    reference_value += roi[AsSize(i)] * cost[AsSize(i)];
  }
  EXPECT_LE(reference_value, dual.dual_upper_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DualSoundness,
                         ::testing::Range<uint64_t>(1, 31));

// ---------------------------------------------------------------------
// Scale: the acceptance runs — 1M rows proven bitwise-equivalent, 10M
// rows allocated inside a 64 MiB accounted cap.
// ---------------------------------------------------------------------

constexpr uint64_t kScaleSeed = 20240942;  // pinned; see EXPERIMENTS.md

TEST(StreamingScale, OneMillionRowsBitwiseMatchReference) {
  const int64_t n = 1'000'000;
  std::vector<double> roi(AsSize64(n));
  std::vector<double> cost(AsSize64(n));
  for (int64_t i = 0; i < n; ++i) {
    SyntheticRowSource::RowAt(kScaleSeed, i, &roi[AsSize64(i)],
                              &cost[AsSize64(i)]);
  }
  double total = 0.0;
  for (double c : cost) total += c;
  double budget = 0.002 * total;
  core::AllocationResult reference =
      core::GreedyAllocate(roi, cost, budget, /*skip_unaffordable=*/false);
  StreamingOptions options;
  options.num_shards = 8;
  options.memory_cap_bytes = size_t{64} << 20;
  SyntheticRowSource source(n, kScaleSeed, /*chunk_rows=*/65536);
  StreamingResult streaming = MustAllocate(&source, budget, options);
  ExpectBitwiseEqual(streaming, reference);
  EXPECT_LE(streaming.peak_memory_bytes, options.memory_cap_bytes);
}

TEST(StreamingScale, TenMillionRowsUnderSixtyFourMiBCap) {
  const int64_t n = 10'000'000;
  SyntheticRowSource source(n, kScaleSeed, /*chunk_rows=*/65536);
  StatusOr<double> total = StreamingTotalCost(&source);
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  double budget = 0.002 * total.value();
  StreamingOptions options;
  options.num_shards = 8;
  options.memory_cap_bytes = size_t{64} << 20;
  StreamingResult streaming = MustAllocate(&source, budget, options);
  EXPECT_EQ(streaming.rows_streamed, n);
  EXPECT_GT(streaming.selected.size(), 0u);
  EXPECT_LE(streaming.spent, budget);
  // The cap held: every byte of working state — chunk buffer, frontiers
  // (including transient merge scratch), merge candidates, selection —
  // went through the accountant and stayed under 64 MiB for a 10M-row
  // population that would need ~229 MiB just for (roi, cost) arrays.
  EXPECT_LE(streaming.peak_memory_bytes, options.memory_cap_bytes);
  EXPECT_GT(streaming.frontier_evictions, 0);
}

}  // namespace
}  // namespace roicl::alloc
