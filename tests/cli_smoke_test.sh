#!/bin/bash
# End-to-end smoke test of the roicl CLI: generate -> train -> predict ->
# evaluate -> allocate. Run by ctest with the build dir as argument.
set -euo pipefail
BUILD_DIR="$1"
WORK=$(mktemp -d)
trap "rm -rf $WORK" EXIT
CLI="$BUILD_DIR/tools/roicl"

$CLI generate --dataset criteo --n 2000 --seed 1 --out $WORK/train.csv
$CLI generate --dataset criteo --n 600 --seed 2 --out $WORK/calib.csv
$CLI generate --dataset criteo --n 800 --seed 3 --out $WORK/test.csv
$CLI train --model rdrp --train $WORK/train.csv --calib $WORK/calib.csv \
    --epochs 10 --restarts 1 --out $WORK/model.rdrp
$CLI predict --model-type rdrp --model $WORK/model.rdrp \
    --data $WORK/test.csv --out $WORK/scores.csv
[ "$(head -1 $WORK/scores.csv)" = "roi,interval_lo,interval_hi" ]
[ "$(wc -l < $WORK/scores.csv)" -eq 801 ]
$CLI evaluate --model-type rdrp --model $WORK/model.rdrp \
    --data $WORK/test.csv | grep -q "AUCC"
$CLI allocate --model-type rdrp --model $WORK/model.rdrp \
    --data $WORK/test.csv --budget-frac 0.2 | grep -q "incr. revenue"
# drp path too
$CLI train --model drp --train $WORK/train.csv --epochs 5 --restarts 1 \
    --out $WORK/model.drp
$CLI evaluate --model-type drp --model $WORK/model.drp \
    --data $WORK/test.csv | grep -q "AUCC"
# error paths return non-zero
if $CLI train --model nonsense --train $WORK/train.csv --out $WORK/x; then
  echo "expected failure for bad model type"; exit 1
fi
if $CLI evaluate --model-type rdrp --model /nonexistent \
    --data $WORK/test.csv; then
  echo "expected failure for missing model"; exit 1
fi

# Flag hardening: misspelled and out-of-range flags must be rejected up
# front (exit 2) with a one-line error naming the offender — not parsed
# into silent defaults.
check_rejects() {
  local needle="$1"; shift
  local rc=0
  "$@" 2>$WORK/err.txt || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "expected exit 2 from: $*, got $rc"; exit 1
  fi
  grep -qF -- "$needle" $WORK/err.txt \
    || { echo "missing '$needle' in error for: $*"; cat $WORK/err.txt; exit 1; }
}
check_rejects "unknown flag --aplha" \
  $CLI train --model drp --train $WORK/train.csv --aplha 0.1 --out $WORK/x
check_rejects "unknown flag --shifted" \
  $CLI evaluate --model-type rdrp --model $WORK/model.rdrp \
      --data $WORK/test.csv --shifted
check_rejects "--alpha must be in (0, 1)" \
  $CLI train --model rdrp --train $WORK/train.csv --calib $WORK/calib.csv \
      --alpha 1.5 --out $WORK/x
check_rejects "--alpha must be in (0, 1)" \
  $CLI train --model rdrp --train $WORK/train.csv --calib $WORK/calib.csv \
      --alpha abc --out $WORK/x
check_rejects "--batch-size must be positive" \
  $CLI predict --model-type rdrp --model $WORK/model.rdrp \
      --data $WORK/test.csv --batch-size 0 --out $WORK/x.csv
check_rejects "--threads must be >= 0" \
  $CLI predict --model-type rdrp --model $WORK/model.rdrp \
      --data $WORK/test.csv --threads -1 --out $WORK/x.csv
# --threads 0 is the documented "shared pool" setting, not an error.
$CLI predict --model-type rdrp --model $WORK/model.rdrp \
    --data $WORK/test.csv --threads 0 --out $WORK/threads0.csv
[ "$(wc -l < $WORK/threads0.csv)" -eq 801 ]

echo "CLI smoke test passed"
