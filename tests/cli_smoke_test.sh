#!/bin/bash
# End-to-end smoke test of the roicl CLI: generate -> train -> predict ->
# evaluate -> allocate. Run by ctest with the build dir as argument.
set -euo pipefail
BUILD_DIR="$1"
WORK=$(mktemp -d)
trap "rm -rf $WORK" EXIT
CLI="$BUILD_DIR/tools/roicl"

$CLI generate --dataset criteo --n 2000 --seed 1 --out $WORK/train.csv
$CLI generate --dataset criteo --n 600 --seed 2 --out $WORK/calib.csv
$CLI generate --dataset criteo --n 800 --seed 3 --out $WORK/test.csv
$CLI train --model rdrp --train $WORK/train.csv --calib $WORK/calib.csv \
    --epochs 10 --restarts 1 --out $WORK/model.rdrp
$CLI predict --model-type rdrp --model $WORK/model.rdrp \
    --data $WORK/test.csv --out $WORK/scores.csv
[ "$(head -1 $WORK/scores.csv)" = "roi,interval_lo,interval_hi" ]
[ "$(wc -l < $WORK/scores.csv)" -eq 801 ]
$CLI evaluate --model-type rdrp --model $WORK/model.rdrp \
    --data $WORK/test.csv | grep -q "AUCC"
$CLI allocate --model-type rdrp --model $WORK/model.rdrp \
    --data $WORK/test.csv --budget-frac 0.2 | grep -q "incr. revenue"
# drp path too
$CLI train --model drp --train $WORK/train.csv --epochs 5 --restarts 1 \
    --out $WORK/model.drp
$CLI evaluate --model-type drp --model $WORK/model.drp \
    --data $WORK/test.csv | grep -q "AUCC"
# error paths return non-zero
if $CLI train --model nonsense --train $WORK/train.csv --out $WORK/x; then
  echo "expected failure for bad model type"; exit 1
fi
if $CLI evaluate --model-type rdrp --model /nonexistent \
    --data $WORK/test.csv; then
  echo "expected failure for missing model"; exit 1
fi
echo "CLI smoke test passed"
